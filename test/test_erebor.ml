(* Security-claim tests (C1–C8, §8 of the paper) plus unit tests for the
   Erebor monitor, MMU guard, gates, sandboxes and the secure channel. *)

let hw_key = Crypto.Sha256.digest_string "fused hardware key"
let firmware = Bytes.of_string "OVMF-firmware-blob"

let benign_kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data =
            Hw.Isa.assemble
              [ Hw.Isa.Endbr; Hw.Isa.Mov_imm (Hw.Isa.R0, 1); Hw.Isa.Call 2;
                Hw.Isa.Syscall; Hw.Isa.Cpuid; Hw.Isa.Clac; Hw.Isa.Ret ] };
        { Hw.Image.name = ".data"; vaddr = 0x8000; executable = false; writable = true;
          data = Bytes.make 64 'd' };
      ];
  }

type stack = {
  mem : Hw.Phys_mem.t;
  cpu : Hw.Cpu.t;
  td : Tdx.Td_module.t;
  host : Vmm.Host.t;
  monitor : Erebor.Monitor.t;
  kern : Kernel.t;
}

let make_stack ?(frames = 16384) ?(cma_frames = 4096) () =
  let mem = Hw.Phys_mem.create ~frames in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:200_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware ~monitor_frames:32
      ~device_shared_frames:32 ()
  in
  match
    Erebor.Monitor.boot_kernel monitor ~kernel_image:benign_kernel_image
      ~reserved_frames:128 ~cma_frames
  with
  | Ok kern -> { mem; cpu; td; host; monitor; kern }
  | Error e -> failwith e

let make_manager st = Erebor.Sandbox.create_manager ~monitor:st.monitor ~kern:st.kern

let expect_violation name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Policy_violation")
  | exception Erebor.Monitor.Policy_violation _ -> ()

let expect_fault name f check =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected a fault")
  | exception Hw.Fault.Fault flt ->
      if not (check flt) then
        Alcotest.failf "%s: unexpected fault %s" name (Hw.Fault.to_string flt)

let is_pkey_pf = function
  | Hw.Fault.Page_fault { pkey_violation; _ } -> pkey_violation
  | _ -> false

let is_cp = function Hw.Fault.Control_protection _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_pkrs () =
  let pkrs = Erebor.Policy.normal_mode_pkrs in
  Alcotest.(check bool) "monitor key blocked" false
    (Hw.Pks.permits ~pkrs ~key:Erebor.Policy.key_monitor ~write:false);
  Alcotest.(check bool) "ptp readable" true
    (Hw.Pks.permits ~pkrs ~key:Erebor.Policy.key_ptp ~write:false);
  Alcotest.(check bool) "ptp not writable" false
    (Hw.Pks.permits ~pkrs ~key:Erebor.Policy.key_ptp ~write:true);
  Alcotest.(check bool) "text not writable" false
    (Hw.Pks.permits ~pkrs ~key:Erebor.Policy.key_kernel_text ~write:true);
  Alcotest.(check bool) "default open" true
    (Hw.Pks.permits ~pkrs ~key:Erebor.Policy.key_default ~write:true);
  Alcotest.(check bool) "monitor mode open" true
    (Hw.Pks.permits ~pkrs:Erebor.Policy.monitor_mode_pkrs ~key:Erebor.Policy.key_monitor
       ~write:true)

let test_policy_inventory () =
  Alcotest.(check int) "five sensitive classes (Table 2)" 5
    (List.length Erebor.Policy.sensitive_instructions);
  Alcotest.(check bool) "tdcall classified" true
    (Erebor.Policy.class_of_isa Hw.Isa.Tdcall = Some Erebor.Policy.Ghci);
  Alcotest.(check bool) "nop benign" true (Erebor.Policy.class_of_isa Hw.Isa.Nop = None)

(* ------------------------------------------------------------------ *)
(* C1: verified boot                                                   *)
(* ------------------------------------------------------------------ *)

let test_boot_accepts_benign () =
  let st = make_stack () in
  Alcotest.(check bool) "kernel booted" true (Erebor.Monitor.kernel st.monitor <> None);
  Alcotest.(check bool) "pks enabled" true (Hw.Cr.pks st.cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "cet enabled" true (Hw.Cr.cet st.cpu.Hw.Cpu.cr);
  Alcotest.(check int64) "normal pkrs loaded" Erebor.Policy.normal_mode_pkrs
    (Hw.Msr.read st.cpu.Hw.Cpu.msr Hw.Msr.ia32_pkrs)

let test_boot_rejects_sensitive () =
  (* Plant each sensitive instruction in .text; every variant must be
     refused (C1). *)
  List.iter
    (fun instr ->
      let image =
        {
          benign_kernel_image with
          Hw.Image.sections =
            [
              { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true;
                writable = false;
                data = Hw.Isa.assemble [ Hw.Isa.Endbr; instr; Hw.Isa.Ret ] };
            ];
        }
      in
      let mem = Hw.Phys_mem.create ~frames:16384 in
      let clock = Hw.Cycles.clock () in
      let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:200_000 () in
      let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
      let monitor =
        Erebor.Monitor.install ~cpu ~mem ~td ~firmware ~monitor_frames:32
          ~device_shared_frames:32 ()
      in
      match
        Erebor.Monitor.boot_kernel monitor ~kernel_image:image ~reserved_frames:128
          ~cma_frames:1024
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "booted a kernel containing %a" Hw.Isa.pp_instr instr)
    [ Hw.Isa.Mov_cr (3, Hw.Isa.R0); Hw.Isa.Wrmsr; Hw.Isa.Stac; Hw.Isa.Lidt; Hw.Isa.Tdcall ]

let test_boot_data_section_not_scanned () =
  (* Non-executable sections may contain arbitrary bytes. *)
  let image =
    {
      benign_kernel_image with
      Hw.Image.sections =
        benign_kernel_image.Hw.Image.sections
        @ [
            { Hw.Image.name = ".rodata"; vaddr = 0x20000; executable = false;
              writable = false; data = Bytes.make 16 '\xc5' (* tdcall bytes *) };
          ];
    }
  in
  Alcotest.(check bool) "data bytes tolerated" true
    (Erebor.Scan.verify_image image = Ok ())

let test_boot_measurement_deterministic () =
  let a = make_stack () and b = make_stack () in
  let ra = Erebor.Monitor.tdreport a.monitor ~report_data:Bytes.empty in
  let rb = Erebor.Monitor.tdreport b.monitor ~report_data:Bytes.empty in
  Alcotest.(check bytes) "same boot, same MRTD" ra.Tdx.Attest.mrtd rb.Tdx.Attest.mrtd

let test_dynamic_code_verification () =
  (* text_poke / module loading path: the monitor scans dynamic code too. *)
  (match Erebor.Scan.verify_bytes ~section:"ebpf" (Hw.Isa.assemble [ Hw.Isa.Add (Hw.Isa.R0, Hw.Isa.R1) ]) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "benign dynamic code rejected");
  match Erebor.Scan.verify_bytes ~section:"ebpf" (Hw.Isa.assemble [ Hw.Isa.Wrmsr ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "sensitive dynamic code accepted"

(* ------------------------------------------------------------------ *)
(* Gates (C4)                                                          *)
(* ------------------------------------------------------------------ *)

let test_gate_rogue_entry () =
  let st = make_stack () in
  let gate = Erebor.Monitor.gate st.monitor in
  expect_fault "mid-gate jump" (fun () ->
      Erebor.Gate.enter gate ~target:(Erebor.Gate.entry_point gate + 4) (fun () -> ()))
    is_cp;
  (* The legitimate entry works. *)
  Alcotest.(check int) "legit entry" 42
    (Erebor.Gate.enter gate ~target:(Erebor.Gate.entry_point gate) (fun () -> 42))

let test_gate_pkrs_switching () =
  let st = make_stack () in
  let gate = Erebor.Monitor.gate st.monitor in
  let msr = st.cpu.Hw.Cpu.msr in
  let inside = ref (-1L) in
  Erebor.Gate.call gate (fun () -> inside := Hw.Msr.read msr Hw.Msr.ia32_pkrs);
  Alcotest.(check int64) "granted inside" Erebor.Policy.monitor_mode_pkrs !inside;
  Alcotest.(check int64) "revoked outside" Erebor.Policy.normal_mode_pkrs
    (Hw.Msr.read msr Hw.Msr.ia32_pkrs)

let test_gate_pkrs_restored_on_exception () =
  let st = make_stack () in
  let gate = Erebor.Monitor.gate st.monitor in
  (try Erebor.Gate.call gate (fun () -> failwith "service blew up")
   with Failure _ -> ());
  Alcotest.(check int64) "revoked after exception" Erebor.Policy.normal_mode_pkrs
    (Hw.Msr.read st.cpu.Hw.Cpu.msr Hw.Msr.ia32_pkrs)

let test_gate_interrupt_revokes () =
  let st = make_stack () in
  let gate = Erebor.Monitor.gate st.monitor in
  let msr = st.cpu.Hw.Cpu.msr in
  let during_irq = ref (-1L) and after_irq = ref (-1L) in
  Erebor.Gate.call gate (fun () ->
      (* An IPI lands mid-EMC: the #INT gate must revoke the granted
         permissions around the OS handler. *)
      Erebor.Gate.interrupt_during_emc gate (fun () ->
          during_irq := Hw.Msr.read msr Hw.Msr.ia32_pkrs);
      after_irq := Hw.Msr.read msr Hw.Msr.ia32_pkrs);
  Alcotest.(check int64) "revoked during irq" Erebor.Policy.normal_mode_pkrs !during_irq;
  Alcotest.(check int64) "restored after irq" Erebor.Policy.monitor_mode_pkrs !after_irq;
  Alcotest.(check int) "interrupt counted" 1 (Erebor.Gate.interrupted_count gate)

let test_gate_emc_cost () =
  let st = make_stack () in
  let gate = Erebor.Monitor.gate st.monitor in
  let t0 = Hw.Cycles.now st.kern.Kernel.clock in
  Erebor.Gate.call gate (fun () -> ());
  Alcotest.(check int) "empty EMC costs 1224" Hw.Cycles.Cost.emc_roundtrip
    (Hw.Cycles.now st.kern.Kernel.clock - t0)

(* ------------------------------------------------------------------ *)
(* C2/C3/C4: MMU + CR/MSR protection                                    *)
(* ------------------------------------------------------------------ *)

let test_kernel_cannot_write_ptp () =
  let st = make_stack () in
  (* Map a PTP (the kernel master root) into the direct map; the guard
     retags it read-only with the PTP key. *)
  Kernel.ensure_direct_map st.kern ~pfn:st.kern.Kernel.kernel_root;
  let va = Kernel.Layout.direct_map (Hw.Phys_mem.addr_of_pfn st.kern.Kernel.kernel_root) in
  (* Reading page tables is fine... *)
  ignore (Hw.Cpu.read_u64 st.cpu va);
  (* ...but a direct store from normal mode trips PKS (C2). *)
  expect_fault "direct PTP write" (fun () -> Hw.Cpu.write_u64 st.cpu va 0xBADL) is_pkey_pf

let test_kernel_cannot_map_monitor_memory () =
  let st = make_stack () in
  expect_violation "mapping monitor memory" (fun () ->
      Kernel.ensure_direct_map st.kern ~pfn:1 (* monitor frame *))

let test_kernel_cannot_store_outside_ptp () =
  let st = make_stack () in
  expect_violation "stray pte store" (fun () ->
      st.kern.Kernel.privops.Kernel.Privops.write_pte
        ~pte_addr:(Hw.Phys_mem.addr_of_pfn 9000) (Hw.Pte.make ~pfn:5 Hw.Pte.default_flags))

let test_kernel_cannot_disable_protections () =
  let st = make_stack () in
  let ops = st.kern.Kernel.privops in
  expect_violation "clear smap" (fun () ->
      ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap false);
  expect_violation "clear smep" (fun () ->
      ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smep false);
  expect_violation "clear wp" (fun () ->
      ops.Kernel.Privops.set_cr_bit ~reg:`Cr0 Hw.Cr.cr0_wp false);
  expect_violation "clear pks" (fun () ->
      ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_pks false);
  expect_violation "write pkrs" (fun () ->
      ops.Kernel.Privops.write_msr Hw.Msr.ia32_pkrs 0L);
  expect_violation "write s_cet" (fun () ->
      ops.Kernel.Privops.write_msr Hw.Msr.ia32_s_cet 0L)

let test_kernel_lstar_interposed () =
  let st = make_stack () in
  st.kern.Kernel.privops.Kernel.Privops.write_msr Hw.Msr.ia32_lstar 0xdeadL;
  let actual = Hw.Msr.read st.cpu.Hw.Cpu.msr Hw.Msr.ia32_lstar in
  Alcotest.(check int64) "syscall entry points at the monitor"
    (Int64.of_int (Erebor.Gate.entry_point (Erebor.Monitor.gate st.monitor)))
    actual

let test_ghci_policy () =
  let st = make_stack () in
  let ops = st.kern.Kernel.privops in
  (* Attestation is monitor-exclusive (C5). *)
  expect_violation "kernel tdreport" (fun () ->
      ops.Kernel.Privops.tdcall (Tdx.Ghci.Tdreport { report_data = Bytes.empty }));
  (* Sharing outside the device region is refused. *)
  expect_violation "share sandbox memory" (fun () ->
      ops.Kernel.Privops.tdcall (Tdx.Ghci.Map_gpa { pfn = 5000; shared = true }));
  (* Sharing inside the device region is the legitimate virtio path. *)
  (match ops.Kernel.Privops.tdcall (Tdx.Ghci.Map_gpa { pfn = 40; shared = true }) with
  | Tdx.Td_module.Ok_unit -> ()
  | _ -> Alcotest.fail "legitimate share failed");
  Alcotest.(check bool) "sept updated" true (Tdx.Sept.is_shared (Tdx.Td_module.sept st.td) 40)

let test_erebor_privop_costs () =
  (* Table 4, Erebor column. *)
  let st = make_stack () in
  let ops = st.kern.Kernel.privops in
  let clock = st.kern.Kernel.clock in
  let measure f =
    let t0 = Hw.Cycles.now clock in
    f ();
    Hw.Cycles.now clock - t0
  in
  (* A leaf store into a real PTP: use the master root's direct-map slot. *)
  Alcotest.(check int) "MMU = 1345"
    1345
    (measure (fun () ->
         ops.Kernel.Privops.write_pte
           ~pte_addr:(Hw.Phys_mem.addr_of_pfn st.kern.Kernel.kernel_root + (8 * 100))
           Hw.Pte.empty));
  Alcotest.(check int) "CR = 1593" 1593
    (measure (fun () -> ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap true));
  Alcotest.(check int) "MSR = 1613" 1613
    (measure (fun () -> ops.Kernel.Privops.write_msr Hw.Msr.ia32_efer 7L));
  Alcotest.(check int) "IDT = 1369" 1369
    (measure (fun () -> ops.Kernel.Privops.lidt (Hw.Idt.create ())));
  Alcotest.(check int) "GHCI tdreport = 128081" 128081
    (measure (fun () -> ignore (Erebor.Monitor.tdreport st.monitor ~report_data:Bytes.empty)))

(* ------------------------------------------------------------------ *)
(* Sandboxes (C6, C7, C8)                                              *)
(* ------------------------------------------------------------------ *)

let make_sandbox ?(budget = 64 * 4096) ?(confined = 16 * 4096) st mgr name =
  ignore st;
  let sb = Result.get_ok (Erebor.Sandbox.create_sandbox mgr ~name ~confined_budget:budget) in
  let base = Result.get_ok (Erebor.Sandbox.declare_confined mgr sb ~len:confined) in
  (sb, base)

let test_sandbox_confined_basics () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, base = make_sandbox st mgr "sb1" in
  Alcotest.(check int) "confined accounted" (16 * 4096) (Erebor.Sandbox.confined_bytes sb);
  (* Pinned: every page resolved, frames from CMA, classified confined. *)
  let task = Erebor.Sandbox.main_task sb in
  for i = 0 to 15 do
    let pfn = Option.get (Kernel.resolve_pfn st.kern task ~addr:(base + (i * 4096))) in
    Alcotest.(check bool) "from CMA" true (Kernel.Alloc.is_allocated st.kern.Kernel.cma pfn);
    (match Erebor.Mmu_guard.class_of (Erebor.Monitor.guard st.monitor) pfn with
    | Erebor.Mmu_guard.Confined { owner } -> Alcotest.(check int) "owner" 1 owner
    | _ -> Alcotest.fail "frame not classified confined")
  done;
  (* Budget enforced. *)
  match Erebor.Sandbox.declare_confined mgr sb ~len:(64 * 4096) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "budget exceeded silently"

let test_confined_single_mapping () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, base = make_sandbox st mgr "victim" in
  let task = Erebor.Sandbox.main_task sb in
  let confined_pfn = Option.get (Kernel.resolve_pfn st.kern task ~addr:base) in
  (* A normal task (the attacker's process) maps a page... *)
  let attacker = Kernel.create_task st.kern ~name:"attacker" ~kind:Kernel.Task.Normal in
  let a_addr = Result.get_ok (Kernel.mmap st.kern attacker ~len:4096 ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  (match Kernel.handle_page_fault st.kern attacker ~addr:a_addr ~kind:Hw.Fault.Write with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* ...then the malicious kernel tries to re-point its leaf PTE at the
     victim's confined frame (double-mapping attack, C6). *)
  let leaf_addr =
    Option.get
      (Hw.Page_table.leaf_addr st.mem ~root_pfn:attacker.Kernel.Task.root_pfn a_addr)
  in
  expect_violation "double map confined frame" (fun () ->
      st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf_addr
        (Hw.Pte.make ~pfn:confined_pfn { Hw.Pte.default_flags with user = true }));
  (* Even within the owning sandbox a second mapping is refused. *)
  let sb_leaf2 =
    (* leaf slot for an unmapped page in the sandbox's own space *)
    let addr2 = base + (15 * 4096) in
    Option.get (Hw.Page_table.leaf_addr st.mem ~root_pfn:task.Kernel.Task.root_pfn addr2)
  in
  expect_violation "second mapping in-sandbox" (fun () ->
      st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:sb_leaf2
        (Hw.Pte.make ~pfn:confined_pfn { Hw.Pte.default_flags with user = true }))

let test_mmu_guard_downgrade_flushes_tlb () =
  (* TLB staleness audit, Erebor side: an accepted Mmu_guard PTE store must
     flush the TLB, so a downgrade takes effect on the very next access —
     no window where a cached writable translation outlives the policy
     decision. *)
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, base = make_sandbox st mgr "sb" in
  let task = Erebor.Sandbox.main_task sb in
  st.kern.Kernel.privops.Kernel.Privops.write_cr3 ~root_pfn:task.Kernel.Task.root_pfn;
  (* Warm the TLB with a successful user write to a confined page. *)
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_u8 st.cpu base 7;
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  (* Kernel downgrades the leaf to read-only through the monitored table. *)
  let pte_addr =
    Option.get (Hw.Page_table.leaf_addr st.mem ~root_pfn:task.Kernel.Task.root_pfn base)
  in
  let ro = Hw.Pte.set_writable (Hw.Phys_mem.read_u64 st.mem pte_addr) false in
  st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr ro;
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  (match Hw.Cpu.read_u8 st.cpu base with
  | v -> Alcotest.(check int) "still readable" 7 v
  | exception Hw.Fault.Fault _ -> Alcotest.fail "downgraded page unreadable");
  expect_fault "write after guard downgrade" (fun () -> Hw.Cpu.write_u8 st.cpu base 8)
    (function Hw.Fault.Page_fault _ -> true | _ -> false);
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor

let test_sandbox_anon_mapping_refused () =
  (* All sandbox memory must be declared: an undeclared anonymous fault is
     refused by the MMU guard. *)
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  let task = Erebor.Sandbox.main_task sb in
  let addr = Result.get_ok (Kernel.mmap st.kern task ~len:4096 ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  expect_violation "undeclared sandbox memory" (fun () ->
      ignore (Kernel.handle_page_fault st.kern task ~addr ~kind:Hw.Fault.Write))

let test_common_sharing () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb1, _ = make_sandbox st mgr "sb1" in
  let sb2, _ = make_sandbox st mgr "sb2" in
  let size = 8 * 4096 in
  let a1 = Result.get_ok (Erebor.Sandbox.attach_common mgr sb1 ~name:"model" ~size) in
  let a2 = Result.get_ok (Erebor.Sandbox.attach_common mgr sb2 ~name:"model" ~size) in
  (* sb1 initializes the shared instance (pre-seal writes allowed). *)
  let t1 = Erebor.Sandbox.main_task sb1 and t2 = Erebor.Sandbox.main_task sb2 in
  (match Kernel.populate st.kern t1 ~start:a1 ~len:size with Ok () -> () | Error e -> Alcotest.fail e);
  Erebor.Sandbox.write_sandbox_bytes mgr sb1 ~addr:a1 (Bytes.of_string "weights!");
  (match Kernel.populate st.kern t2 ~start:a2 ~len:size with Ok () -> () | Error e -> Alcotest.fail e);
  (* Same backing frames: sb2 reads sb1's initialization. *)
  Alcotest.(check string) "shared content" "weights!"
    (Bytes.to_string (Erebor.Sandbox.read_sandbox_bytes mgr sb2 ~addr:a2 ~len:8));
  Alcotest.(check int) "one set of frames" 8
    (Erebor.Sandbox.common_instance_frames mgr ~name:"model");
  let p1 = Option.get (Kernel.resolve_pfn st.kern t1 ~addr:a1) in
  let p2 = Option.get (Kernel.resolve_pfn st.kern t2 ~addr:a2) in
  Alcotest.(check int) "same pfn" p1 p2

let test_common_sealed_after_data () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _base = make_sandbox st mgr "sb" in
  let task = Erebor.Sandbox.main_task sb in
  let size = 4 * 4096 in
  let caddr = Result.get_ok (Erebor.Sandbox.attach_common mgr sb ~name:"db" ~size) in
  (match Kernel.populate st.kern task ~start:caddr ~len:size with Ok () -> () | Error e -> Alcotest.fail e);
  (* Writable before data... *)
  st.kern.Kernel.privops.Kernel.Privops.write_cr3 ~root_pfn:task.Kernel.Task.root_pfn;
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_u8 st.cpu caddr 7;
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  (* ...read-only once client data is loaded (C7 / §6.1). *)
  (match Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "secret") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  (match Hw.Cpu.read_u8 st.cpu caddr with
  | v -> Alcotest.(check int) "still readable" 7 v
  | exception Hw.Fault.Fault _ -> Alcotest.fail "sealed common unreadable");
  expect_fault "write sealed common" (fun () -> Hw.Cpu.write_u8 st.cpu caddr 8) (function
    | Hw.Fault.Page_fault _ -> true
    | _ -> false);
  st.cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor

let test_sandbox_kills_on_syscall_after_data () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "hush")));
  (match Erebor.Sandbox.handle_syscall mgr sb (Kernel.Syscall.Open { path = "/etc/passwd" }) with
  | Kernel.Syscall.Rerr _ -> ()
  | _ -> Alcotest.fail "post-data syscall allowed");
  Alcotest.(check bool) "killed" true (Erebor.Sandbox.kill_reason sb <> None);
  Alcotest.(check bool) "task dead" true
    ((Erebor.Sandbox.main_task sb).Kernel.Task.state = Kernel.Task.Dead);
  (* The attempted leak never reached the kernel fs. *)
  Alcotest.(check bool) "no file created" false (Kernel.Fs.exists st.kern.Kernel.fs "/etc/passwd")

let test_sandbox_channel_ioctl () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "input-42")));
  let fd = Erebor.Sandbox.channel_fd sb in
  (match
     Erebor.Sandbox.handle_syscall mgr sb
       (Kernel.Syscall.Ioctl { fd; request = 1; arg = Bytes.empty })
   with
  | Kernel.Syscall.Rbytes b ->
      Alcotest.(check string) "input delivered" "input-42" (Bytes.to_string b)
  | r -> Alcotest.failf "input ioctl: %a" Kernel.Syscall.pp_result r);
  (match
     Erebor.Sandbox.handle_syscall mgr sb
       (Kernel.Syscall.Ioctl { fd; request = 2; arg = Bytes.of_string "result!" })
   with
  | Kernel.Syscall.Rok -> ()
  | r -> Alcotest.failf "output ioctl: %a" Kernel.Syscall.pp_result r);
  Alcotest.(check string) "output collected" "result!"
    (Bytes.to_string (Erebor.Sandbox.take_output mgr sb));
  Alcotest.(check bool) "still alive" true (Erebor.Sandbox.kill_reason sb = None)

let test_sandbox_ve_kill () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "x")));
  (match Erebor.Sandbox.handle_ve mgr sb ~reason:48 with
  | Kernel.Syscall.Rerr _ -> ()
  | _ -> Alcotest.fail "#VE exit allowed");
  Alcotest.(check bool) "killed" true (Erebor.Sandbox.kill_reason sb <> None)

let test_sandbox_cpuid_cached () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "x")));
  let vm0 = List.length (Vmm.Host.vmcall_log st.host) in
  let v1 = Erebor.Sandbox.cpuid mgr sb ~leaf:1 in
  let v2 = Erebor.Sandbox.cpuid mgr sb ~leaf:1 in
  Alcotest.(check int64) "stable value" v1 v2;
  Alcotest.(check int) "only one host exit" (vm0 + 1) (List.length (Vmm.Host.vmcall_log st.host));
  Alcotest.(check int) "cache hit recorded" 1 (Erebor.Monitor.cpuid_cache_hits st.monitor);
  Alcotest.(check bool) "not killed by cpuid" true (Erebor.Sandbox.kill_reason sb = None)

let test_sandbox_interrupt_masks_state () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "x")));
  st.cpu.Hw.Cpu.regs.(2) <- 0x5ec2e7L;
  let seen = ref (-1L) in
  Erebor.Sandbox.handle_interrupt mgr sb (fun () -> seen := st.cpu.Hw.Cpu.regs.(2));
  Alcotest.(check int64) "OS saw masked regs" 0L !seen;
  Alcotest.(check int64) "sandbox state restored" 0x5ec2e7L st.cpu.Hw.Cpu.regs.(2)

let test_sandbox_uintr_disabled () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, _ = make_sandbox st mgr "sb" in
  (* Give the sandbox a valid target table, as if it prepared an AV3 leak. *)
  Hw.Msr.write st.cpu.Hw.Cpu.msr Hw.Msr.ia32_uintr_tt Hw.Msr.uintr_tt_valid_bit;
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "x")));
  match Hw.Uintr.senduipi ~msr:st.cpu.Hw.Cpu.msr ~slot:1 with
  | Hw.Uintr.Faulted (Hw.Fault.General_protection _) -> ()
  | _ -> Alcotest.fail "senduipi after data load succeeded"

let test_usercopy_veto_on_sealed_sandbox () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, base = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "secret")));
  (* Kernel runs in the sandbox's address space (e.g. at an interrupt) and
     tries a user copy to exfiltrate confined memory (AV1). *)
  st.kern.Kernel.privops.Kernel.Privops.write_cr3
    ~root_pfn:(Erebor.Sandbox.main_task sb).Kernel.Task.root_pfn;
  expect_violation "usercopy from sealed sandbox" (fun () ->
      ignore (st.kern.Kernel.privops.Kernel.Privops.copy_from_user ~user_addr:base ~len:6))

let test_kernel_smap_blocks_sandbox_read () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, base = make_sandbox st mgr "sb" in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "secret")));
  st.kern.Kernel.privops.Kernel.Privops.write_cr3
    ~root_pfn:(Erebor.Sandbox.main_task sb).Kernel.Task.root_pfn;
  (* Direct kernel-mode access to sandbox user pages trips SMAP (C6). *)
  expect_fault "kernel touches sandbox page" (fun () -> Hw.Cpu.read_u8 st.cpu base) (function
    | Hw.Fault.Page_fault { user = false; _ } -> true
    | _ -> false)

let test_sandbox_terminate_scrubs () =
  let st = make_stack () in
  let mgr = make_manager st in
  let sb, base = make_sandbox st mgr "sb" in
  let task = Erebor.Sandbox.main_task sb in
  let pfn = Option.get (Kernel.resolve_pfn st.kern task ~addr:base) in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data mgr sb (Bytes.of_string "TOPSECRET")));
  Alcotest.(check string) "data present" "TOPSECRET"
    (Bytes.to_string (Hw.Phys_mem.read_bytes st.mem (Hw.Phys_mem.addr_of_pfn pfn) 9));
  Erebor.Sandbox.terminate mgr sb;
  Alcotest.(check bytes) "frame zeroed" (Bytes.make 9 '\000')
    (Hw.Phys_mem.read_bytes st.mem (Hw.Phys_mem.addr_of_pfn pfn) 9);
  Alcotest.(check bool) "frame declassified" true
    (Erebor.Mmu_guard.class_of (Erebor.Monitor.guard st.monitor) pfn = Erebor.Mmu_guard.Free);
  Alcotest.(check bool) "frame freed" false
    (Kernel.Alloc.is_allocated st.kern.Kernel.cma pfn)

(* Fuzz the EMC MMU interface: random stores must either be applied under
   policy or rejected — and the monitor's own memory must stay intact and
   unmappable throughout. *)
let prop_guard_fuzz =
  QCheck.Test.make ~name:"random EMC stores never break the registry" ~count:15
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40)
              (tup3 (int_bound 16383) (int_bound 16383) bool))
    (fun stores ->
      let st = make_stack () in
      let guard = Erebor.Monitor.guard st.monitor in
      let denied_before = Erebor.Mmu_guard.denied_count guard in
      let errors = ref 0 in
      List.iter
        (fun (slot_pfn, target_pfn, user) ->
          let pte_addr = Hw.Phys_mem.addr_of_pfn slot_pfn + 8 * (target_pfn land 0x1ff) in
          let pte = Hw.Pte.make ~pfn:target_pfn { Hw.Pte.default_flags with user } in
          match st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr pte with
          | () -> ()
          | exception Erebor.Monitor.Policy_violation _ -> incr errors)
        stores;
      (* Every rejection was counted; monitor frames never reclassified. *)
      Erebor.Mmu_guard.denied_count guard - denied_before = !errors
      && List.for_all
           (fun pfn -> Erebor.Mmu_guard.class_of guard pfn = Erebor.Mmu_guard.Monitor)
           (List.init 32 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Secure channel (C5)                                                 *)
(* ------------------------------------------------------------------ *)

let handshake st =
  let rng_c = Crypto.Drbg.create ~seed:"client rng" in
  let rng_s = Crypto.Drbg.create ~seed:"server rng" in
  let expected =
    (Erebor.Monitor.tdreport st.monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in
  let client = Erebor.Channel.Client.create ~rng:rng_c ~hw_key ~expected_mrtd:expected in
  let wire = Erebor.Channel.Wire.create () in
  Erebor.Channel.Wire.send wire (Erebor.Channel.Client.hello client);
  let hello = Option.get (Erebor.Channel.Wire.recv wire) in
  match Erebor.Channel.Server.accept ~monitor:st.monitor ~rng:rng_s ~client_hello:hello with
  | Error e -> failwith e
  | Ok (server, server_hello) ->
      Erebor.Channel.Wire.send wire server_hello;
      (match Erebor.Channel.Client.finish client
               ~server_hello:(Option.get (Erebor.Channel.Wire.recv wire)) with
      | Ok () -> ()
      | Error e -> failwith e);
      (client, server, wire)

let contains_substring hay needle =
  let h = Bytes.to_string hay in
  let n = String.length needle and hl = String.length h in
  let rec go i = i + n <= hl && (String.sub h i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_channel_end_to_end () =
  let st = make_stack () in
  let client, server, wire = handshake st in
  let secret = "patient record 12345" in
  let request = Erebor.Channel.Client.seal_request client (Bytes.of_string secret) in
  Erebor.Channel.Wire.send wire request;
  let got =
    Result.get_ok
      (Erebor.Channel.Server.open_request server (Option.get (Erebor.Channel.Wire.recv wire)))
  in
  Alcotest.(check string) "monitor decrypts request" secret (Bytes.to_string got);
  let response = Erebor.Channel.Server.seal_response server ~bucket:256 (Bytes.of_string "diagnosis: ok") in
  Erebor.Channel.Wire.send wire response;
  (match
     Erebor.Channel.Client.open_response client (Option.get (Erebor.Channel.Wire.recv wire))
   with
  | Ok b -> Alcotest.(check string) "client decrypts response" "diagnosis: ok" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  (* The untrusted proxy saw ciphertext only. *)
  List.iter
    (fun msg ->
      if contains_substring msg secret || contains_substring msg "diagnosis" then
        Alcotest.fail "plaintext leaked onto the wire")
    (Erebor.Channel.Wire.snoop wire)

let test_channel_rejects_wrong_mrtd () =
  let st = make_stack () in
  let rng = Crypto.Drbg.create ~seed:"c" in
  let client =
    Erebor.Channel.Client.create ~rng ~hw_key
      ~expected_mrtd:(Crypto.Sha256.digest_string "some other monitor")
  in
  let hello = Erebor.Channel.Client.hello client in
  match Erebor.Channel.Server.accept ~monitor:st.monitor ~rng ~client_hello:hello with
  | Error e -> Alcotest.fail e
  | Ok (_, server_hello) -> (
      match Erebor.Channel.Client.finish client ~server_hello with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "client accepted an unexpected measurement")

let test_channel_rejects_impersonation () =
  (* An attacker (the untrusted OS) cannot mint a valid report: it has no
     access to the tdcall (sensitive) and no hardware key (C5). *)
  let st = make_stack () in
  let rng = Crypto.Drbg.create ~seed:"attacker" in
  let real =
    (Erebor.Monitor.tdreport st.monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in
  let client = Erebor.Channel.Client.create ~rng ~hw_key ~expected_mrtd:real in
  ignore (Erebor.Channel.Client.hello client);
  (* Forge: correct-looking report, attacker-chosen MAC key. *)
  let atk_kp = Crypto.Dh.generate rng in
  let fake_report =
    let m = Tdx.Attest.create_measurements () in
    Tdx.Attest.generate m ~hw_key:(Crypto.Sha256.digest_string "guessed key")
      ~report_data:Bytes.empty
  in
  let forged_hello =
    Bytes.cat (Crypto.Dh.public_bytes atk_kp) (Erebor.Channel.serialize_report fake_report)
  in
  match Erebor.Channel.Client.finish client ~server_hello:forged_hello with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "client accepted a forged report"

let test_channel_replay_binding () =
  (* A report minted for one handshake cannot authenticate another: the
     report_data binds the DH transcript. *)
  let st = make_stack () in
  let _, _, _ = handshake st in
  let rng = Crypto.Drbg.create ~seed:"second client" in
  let expected =
    (Erebor.Monitor.tdreport st.monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in
  let client2 = Erebor.Channel.Client.create ~rng ~hw_key ~expected_mrtd:expected in
  ignore (Erebor.Channel.Client.hello client2);
  (* Replay: server hello from a *different* handshake (fresh keys, report
     bound to other transcript). *)
  let other_rng = Crypto.Drbg.create ~seed:"other" in
  let other_kp = Crypto.Dh.generate other_rng in
  let other_pub = Crypto.Dh.public_bytes other_kp in
  let stale_report = Erebor.Monitor.tdreport st.monitor ~report_data:(Bytes.of_string "stale") in
  let replayed = Bytes.cat other_pub (Erebor.Channel.serialize_report stale_report) in
  match Erebor.Channel.Client.finish client2 ~server_hello:replayed with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "client accepted a replayed report"

let test_channel_padding_hides_size () =
  let st = make_stack () in
  let _, server, _ = handshake st in
  let r1 = Erebor.Channel.Server.seal_response server ~bucket:1024 (Bytes.of_string "no") in
  let r2 =
    Erebor.Channel.Server.seal_response server ~bucket:1024 (Bytes.make 900 'x')
  in
  Alcotest.(check int) "equal wire sizes" (Bytes.length r1) (Bytes.length r2)

let test_channel_tamper_rejected () =
  let st = make_stack () in
  let client, server, _ = handshake st in
  let request = Erebor.Channel.Client.seal_request client (Bytes.of_string "data") in
  Bytes.set request (Bytes.length request - 1)
    (Char.chr (Char.code (Bytes.get request (Bytes.length request - 1)) lxor 1));
  match Erebor.Channel.Server.open_request server request with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered request accepted"

let test_pad_unpad_roundtrip () =
  List.iter
    (fun n ->
      let data = Bytes.init n (fun i -> Char.chr (i mod 256)) in
      let padded = Erebor.Channel.pad_to_bucket ~bucket:64 data in
      Alcotest.(check int) "multiple of bucket" 0 (Bytes.length padded mod 64);
      Alcotest.(check bytes) "roundtrip" data (Result.get_ok (Erebor.Channel.unpad padded)))
    [ 0; 1; 55; 56; 64; 100; 1000 ]

let () =
  Alcotest.run "erebor"
    [
      ( "policy",
        [
          Alcotest.test_case "pkrs values" `Quick test_policy_pkrs;
          Alcotest.test_case "inventory" `Quick test_policy_inventory;
        ] );
      ( "boot (C1)",
        [
          Alcotest.test_case "accepts benign" `Quick test_boot_accepts_benign;
          Alcotest.test_case "rejects sensitive" `Quick test_boot_rejects_sensitive;
          Alcotest.test_case "data not scanned" `Quick test_boot_data_section_not_scanned;
          Alcotest.test_case "deterministic measurement" `Quick test_boot_measurement_deterministic;
          Alcotest.test_case "dynamic code" `Quick test_dynamic_code_verification;
        ] );
      ( "gates (C4)",
        [
          Alcotest.test_case "rogue entry #CP" `Quick test_gate_rogue_entry;
          Alcotest.test_case "pkrs switching" `Quick test_gate_pkrs_switching;
          Alcotest.test_case "exception safety" `Quick test_gate_pkrs_restored_on_exception;
          Alcotest.test_case "interrupt gate" `Quick test_gate_interrupt_revokes;
          Alcotest.test_case "emc cost" `Quick test_gate_emc_cost;
        ] );
      ( "mmu/privops (C2-C4)",
        [
          Alcotest.test_case "ptp write-protected" `Quick test_kernel_cannot_write_ptp;
          Alcotest.test_case "monitor unmappable" `Quick test_kernel_cannot_map_monitor_memory;
          Alcotest.test_case "stray pte store" `Quick test_kernel_cannot_store_outside_ptp;
          Alcotest.test_case "protections pinned" `Quick test_kernel_cannot_disable_protections;
          Alcotest.test_case "lstar interposed" `Quick test_kernel_lstar_interposed;
          Alcotest.test_case "ghci policy" `Quick test_ghci_policy;
          Alcotest.test_case "erebor privop costs" `Quick test_erebor_privop_costs;
        ] );
      ( "sandbox (C6-C8)",
        [
          Alcotest.test_case "confined basics" `Quick test_sandbox_confined_basics;
          Alcotest.test_case "single mapping" `Quick test_confined_single_mapping;
          Alcotest.test_case "downgrade flushes tlb" `Quick test_mmu_guard_downgrade_flushes_tlb;
          Alcotest.test_case "undeclared memory refused" `Quick test_sandbox_anon_mapping_refused;
          Alcotest.test_case "common sharing" `Quick test_common_sharing;
          Alcotest.test_case "common sealed" `Quick test_common_sealed_after_data;
          Alcotest.test_case "syscall kill" `Quick test_sandbox_kills_on_syscall_after_data;
          Alcotest.test_case "channel ioctl" `Quick test_sandbox_channel_ioctl;
          Alcotest.test_case "#VE kill" `Quick test_sandbox_ve_kill;
          Alcotest.test_case "cpuid cached" `Quick test_sandbox_cpuid_cached;
          Alcotest.test_case "interrupt masking" `Quick test_sandbox_interrupt_masks_state;
          Alcotest.test_case "uintr disabled" `Quick test_sandbox_uintr_disabled;
          Alcotest.test_case "usercopy veto" `Quick test_usercopy_veto_on_sealed_sandbox;
          Alcotest.test_case "smap blocks kernel" `Quick test_kernel_smap_blocks_sandbox_read;
          Alcotest.test_case "terminate scrubs" `Quick test_sandbox_terminate_scrubs;
          QCheck_alcotest.to_alcotest prop_guard_fuzz;
        ] );
      ( "channel (C5)",
        [
          Alcotest.test_case "end to end" `Quick test_channel_end_to_end;
          Alcotest.test_case "wrong mrtd" `Quick test_channel_rejects_wrong_mrtd;
          Alcotest.test_case "impersonation" `Quick test_channel_rejects_impersonation;
          Alcotest.test_case "replay binding" `Quick test_channel_replay_binding;
          Alcotest.test_case "padding" `Quick test_channel_padding_hides_size;
          Alcotest.test_case "tamper" `Quick test_channel_tamper_rejected;
          Alcotest.test_case "pad/unpad" `Quick test_pad_unpad_roundtrip;
        ] );
    ]
