(* Tests for the workload algorithms (the real compute kernels) and the
   profile-driven spec builder. *)

let rng () = Crypto.Drbg.create ~seed:"workload tests"

(* ------------------------------------------------------------------ *)
(* LLM                                                                 *)
(* ------------------------------------------------------------------ *)

let test_llm_train_generate () =
  let model = Workloads.Llm.Model.train ~order:3 "abcabcabcabcabcabc" in
  Alcotest.(check bool) "has contexts" true (Workloads.Llm.Model.contexts model > 0);
  let text = Workloads.Llm.Model.generate model ~rng:(rng ()) ~prompt:"abc" ~n:12 in
  Alcotest.(check int) "length" 12 (String.length text);
  (* A purely periodic corpus generates the same period. *)
  String.iter (fun c -> if not (String.contains "abc" c) then Alcotest.fail "off-alphabet") text

let test_llm_deterministic_given_rng () =
  let model = Workloads.Llm.default_model in
  let a = Workloads.Llm.Model.generate model ~rng:(Crypto.Drbg.create ~seed:"x") ~prompt:"the " ~n:50 in
  let b = Workloads.Llm.Model.generate model ~rng:(Crypto.Drbg.create ~seed:"x") ~prompt:"the " ~n:50 in
  Alcotest.(check string) "deterministic" a b

let test_llm_rejects_bad_order () =
  Alcotest.check_raises "order 0" (Invalid_argument "Model.train: order must be >= 1")
    (fun () -> ignore (Workloads.Llm.Model.train ~order:0 "xyz"))

(* ------------------------------------------------------------------ *)
(* Retrieval hashmap                                                   *)
(* ------------------------------------------------------------------ *)

let test_hashmap_basic () =
  let h = Workloads.Retrieval.Hashmap.create ~capacity:64 in
  Workloads.Retrieval.Hashmap.put h "a" 1;
  Workloads.Retrieval.Hashmap.put h "b" 2;
  Workloads.Retrieval.Hashmap.put h "a" 3;
  Alcotest.(check (option int)) "get a" (Some 3) (Workloads.Retrieval.Hashmap.get h "a");
  Alcotest.(check (option int)) "get b" (Some 2) (Workloads.Retrieval.Hashmap.get h "b");
  Alcotest.(check (option int)) "miss" None (Workloads.Retrieval.Hashmap.get h "c");
  Alcotest.(check int) "length counts keys" 2 (Workloads.Retrieval.Hashmap.length h);
  Alcotest.(check bool) "probes counted" true (Workloads.Retrieval.Hashmap.probes h > 0)

let test_hashmap_rejects () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Hashmap.create: capacity must be a power of two") (fun () ->
      ignore (Workloads.Retrieval.Hashmap.create ~capacity:100))

let prop_hashmap_model =
  QCheck.Test.make ~name:"hashmap agrees with assoc list" ~count:100
    QCheck.(list (pair (string_of_size QCheck.Gen.(1 -- 8)) small_int))
    (fun kvs ->
      let kvs = List.filteri (fun i _ -> i < 40) kvs in
      let h = Workloads.Retrieval.Hashmap.create ~capacity:256 in
      List.iter (fun (k, v) -> Workloads.Retrieval.Hashmap.put h k v) kvs;
      List.for_all
        (fun (k, _) ->
          (* last binding wins, as in the map *)
          let expected = List.assoc k (List.rev kvs) in
          Workloads.Retrieval.Hashmap.get h k = Some expected)
        kvs)

let test_synthetic_db () =
  let db = Workloads.Retrieval.synthetic_db ~rng:(rng ()) ~entries:500 in
  Alcotest.(check int) "all inserted" 500 (Workloads.Retrieval.Hashmap.length db);
  match Workloads.Retrieval.Hashmap.get db (Workloads.Retrieval.drug_key 123) with
  | Some r -> Alcotest.(check string) "name" "compound-123" r.Workloads.Retrieval.name
  | None -> Alcotest.fail "missing record"

(* ------------------------------------------------------------------ *)
(* Graph / PageRank                                                    *)
(* ------------------------------------------------------------------ *)

let test_csr_structure () =
  let g = Workloads.Graph.Csr.of_edges ~nodes:4 [ (0, 1); (0, 2); (1, 2); (3, 0); (9, 1) ] in
  Alcotest.(check int) "nodes" 4 (Workloads.Graph.Csr.nodes g);
  Alcotest.(check int) "edges (oob dropped)" 4 (Workloads.Graph.Csr.edges g);
  Alcotest.(check int) "deg 0" 2 (Workloads.Graph.Csr.out_degree g 0);
  Alcotest.(check int) "deg 2 (sink)" 0 (Workloads.Graph.Csr.out_degree g 2)

let test_pagerank_properties () =
  let g = Workloads.Graph.Csr.synthetic ~rng:(rng ()) ~nodes:300 ~edges:3000 in
  let rank = Workloads.Graph.Csr.pagerank g ~iterations:20 ~damping:0.85 in
  let sum = Array.fold_left ( +. ) 0.0 rank in
  Alcotest.(check (float 0.01)) "ranks sum to 1" 1.0 sum;
  Array.iter (fun r -> if r < 0.0 then Alcotest.fail "negative rank") rank;
  let top = Workloads.Graph.Csr.top_k rank ~k:5 in
  Alcotest.(check int) "top-5" 5 (List.length top);
  (match top with
  | (_, first) :: (_, second) :: _ ->
      Alcotest.(check bool) "sorted descending" true (first >= second)
  | _ -> Alcotest.fail "top_k");
  (* The synthetic generator biases toward low ids: node 0 should rank in
     the upper half. *)
  let sorted = Array.copy rank in
  Array.sort compare sorted;
  Alcotest.(check bool) "low ids favoured" true
    (rank.(0) >= sorted.(Array.length sorted / 2))

let test_pagerank_empty () =
  Alcotest.(check int) "empty graph" 0
    (Array.length
       (Workloads.Graph.Csr.pagerank
          (Workloads.Graph.Csr.of_edges ~nodes:0 [])
          ~iterations:3 ~damping:0.85))

(* ------------------------------------------------------------------ *)
(* IDS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ids_scores () =
  let r = rng () in
  let baseline = Workloads.Ids.baseline ~rng:r in
  let clean = Workloads.Ids.synthetic_log ~rng:r ~events:4000 ~anomaly_rate:0.0 in
  let attacked = Workloads.Ids.synthetic_log ~rng:r ~events:4000 ~anomaly_rate:0.3 in
  let clean_score = Workloads.Ids.score ~baseline clean in
  let attack_score = Workloads.Ids.score ~baseline attacked in
  Alcotest.(check bool) "clean close to baseline" true (clean_score < 0.05);
  Alcotest.(check bool) "attack diverges" true (attack_score > 2.0 *. clean_score);
  Alcotest.(check bool) "scores in [0,1]" true
    (clean_score >= 0.0 && clean_score <= 1.0 && attack_score >= 0.0 && attack_score <= 1.0)

let test_sketch_cosine () =
  let a = Workloads.Ids.Sketch.create ~width:64 in
  let b = Workloads.Ids.Sketch.create ~width:64 in
  let e = { Workloads.Ids.src = "x"; action = "y"; dst = "z" } in
  Alcotest.(check (float 0.001)) "empty cosine" 0.0 (Workloads.Ids.Sketch.cosine a b);
  Workloads.Ids.Sketch.add a e;
  Workloads.Ids.Sketch.add b e;
  Alcotest.(check (float 0.001)) "identical" 1.0 (Workloads.Ids.Sketch.cosine a b);
  Alcotest.(check int) "count" 1 (Workloads.Ids.Sketch.count a)

(* ------------------------------------------------------------------ *)
(* Image processing                                                    *)
(* ------------------------------------------------------------------ *)

let test_image_pipeline () =
  let r = rng () in
  let img = Workloads.Imageproc.Image.synthetic ~rng:r ~width:64 ~height:64 ~blobs:3 in
  Alcotest.(check int) "pixels" (64 * 64) (Array.length img.Workloads.Imageproc.Image.pixels);
  let edges = Workloads.Imageproc.Image.sobel img in
  let binary = Workloads.Imageproc.Image.threshold edges ~level:100 in
  Array.iter
    (fun v -> if v <> 0 && v <> 1 then Alcotest.fail "not binary")
    binary.Workloads.Imageproc.Image.pixels;
  let n = Workloads.Imageproc.Image.segments binary in
  Alcotest.(check bool) "found some segments" true (n >= 1);
  (* A blank image has no segments. *)
  let blank =
    { Workloads.Imageproc.Image.width = 8; height = 8; pixels = Array.make 64 0 }
  in
  Alcotest.(check int) "blank" 0 (Workloads.Imageproc.Image.segments blank)

let test_segments_counts_blobs () =
  (* Two clearly separated squares -> two components. *)
  let width = 32 and height = 32 in
  let pixels = Array.make (width * height) 0 in
  List.iter
    (fun (x0, y0) ->
      for y = y0 to y0 + 4 do
        for x = x0 to x0 + 4 do
          pixels.((y * width) + x) <- 1
        done
      done)
    [ (2, 2); (20, 20) ];
  Alcotest.(check int) "two components" 2
    (Workloads.Imageproc.Image.segments { Workloads.Imageproc.Image.width; height; pixels })

(* ------------------------------------------------------------------ *)
(* Profiles / spec builder                                             *)
(* ------------------------------------------------------------------ *)

let test_profiles_match_table5 () =
  (* Table 5/6 anchor values. *)
  let check name (p : Workloads.Workload.profile) seconds confined common =
    Alcotest.(check string) (name ^ " name") name p.Workloads.Workload.name;
    Alcotest.(check (float 0.001)) (name ^ " time") seconds p.Workloads.Workload.nominal_seconds;
    Alcotest.(check int) (name ^ " confined") confined p.Workloads.Workload.nominal_confined_mb;
    Alcotest.(check bool)
      (name ^ " common")
      true
      (match (p.Workloads.Workload.common, common) with
      | Some (_, mb), Some mb' -> mb = mb'
      | None, None -> true
      | _ -> false)
  in
  check "llama.cpp" Workloads.Llm.profile 52.85 501 (Some 4096);
  check "yolo" Workloads.Imageproc.profile 19.60 757 (Some 132);
  check "drugbank" Workloads.Retrieval.profile 12.89 814 (Some 400);
  check "graphchi" Workloads.Graph.profile 34.31 1340 None;
  check "unicorn" Workloads.Ids.profile 38.94 1254 None

let test_spec_scaling () =
  let spec = Workloads.Llm.spec () in
  Alcotest.(check int) "confined scaled by mem_scale"
    (501 * 1024 * 1024 / Workloads.Workload.mem_scale)
    spec.Sim.Machine.confined_bytes;
  Alcotest.(check int) "nominal preserved" 501 spec.Sim.Machine.nominal_confined_mb;
  Alcotest.(check bool) "sandboxed" true spec.Sim.Machine.sandboxed;
  Alcotest.(check int) "threads" 8 spec.Sim.Machine.threads

(* ------------------------------------------------------------------ *)
(* LMBench / netserve structure                                        *)
(* ------------------------------------------------------------------ *)

let test_lmbench_list () =
  let names = List.map (fun b -> b.Workloads.Lmbench.bench_name) Workloads.Lmbench.benches in
  Alcotest.(check (list string)) "fig 8 benches"
    [ "syscall"; "read"; "write"; "signal"; "mmap"; "pagefault"; "fork" ]
    names

let test_lmbench_syscall_overhead () =
  let ratio, native, erebor =
    Workloads.Lmbench.overhead (List.hd Workloads.Lmbench.benches)
  in
  Alcotest.(check (float 0.1)) "native null syscall"
    (float_of_int Hw.Cycles.Cost.syscall_roundtrip)
    native.Workloads.Lmbench.avg_cycles;
  Alcotest.(check bool) "erebor dearer" true (ratio > 1.0);
  Alcotest.(check bool) "but bounded" true (ratio < 4.0);
  Alcotest.(check bool) "ops/sec positive" true (erebor.Workloads.Lmbench.ops_per_sec > 0.0)

let test_lmbench_pagefault_worst () =
  (* Fig 8: pagefault is the worst benchmark. *)
  let ratios =
    List.map
      (fun b ->
        let ratio, _, _ = Workloads.Lmbench.overhead b in
        (b.Workloads.Lmbench.bench_name, ratio))
      Workloads.Lmbench.benches
  in
  let pf = List.assoc "pagefault" ratios in
  List.iter
    (fun (name, r) ->
      if name <> "pagefault" && name <> "mmap" then
        Alcotest.(check bool) (name ^ " below pagefault") true (r <= pf))
    ratios

let test_netserve_shape () =
  (* Small files hurt more; everything stays below parity. *)
  let small =
    Workloads.Netserve.relative_throughput Workloads.Netserve.Ssh ~file_kb:1 ~requests:20
  in
  let large =
    Workloads.Netserve.relative_throughput Workloads.Netserve.Ssh ~file_kb:4096 ~requests:2
  in
  Alcotest.(check bool) "below native" true (small < 1.0 && large < 1.0);
  Alcotest.(check bool) "small files hurt more" true (small < large);
  Alcotest.(check bool) "large files near native" true (large > 0.93)

(* ------------------------------------------------------------------ *)
(* Cycle attribution over the Fig. 9 grid                              *)
(* ------------------------------------------------------------------ *)

(* The attribution breakdown is part of the deterministic evaluation
   output: fanning the 25 machines across domains must not change a single
   cycle, and every row must conserve cycles exactly. *)
let test_attrib_determinism () =
  let a1 = Workloads.Eval.attrib ~jobs:1 () in
  let a2 = Workloads.Eval.attrib ~jobs:3 () in
  Alcotest.(check int) "program x setting grid"
    (List.length Workloads.Eval.all_programs * List.length Sim.Config.all)
    (List.length a1);
  Alcotest.(check bool) "identical under --jobs 1 vs --jobs 3" true (a1 = a2);
  List.iter
    (fun (r : Workloads.Eval.attrib_row) ->
      let name field =
        Printf.sprintf "%s@%s %s" r.aprogram (Sim.Config.name r.asetting) field
      in
      let summed =
        List.fold_left (fun acc (_, _, c) -> acc + c) r.unattributed_cycles
          r.contexts
      in
      Alcotest.(check int) (name "conserves cycles") r.total_cycles summed;
      Alcotest.(check bool) (name "run phase present") true
        (List.exists (fun (d, p, _) -> d = "user" && p = "run") r.contexts);
      List.iter
        (fun (_, _, c) ->
          Alcotest.(check bool) (name "nonzero contexts only") true (c > 0))
        r.contexts)
    a1

(* ------------------------------------------------------------------ *)
(* Bench regression gate                                               *)
(* ------------------------------------------------------------------ *)

let test_bench_gate_json () =
  let module J = Workloads.Bench_gate.Json in
  (match J.parse {| {"a": [1, 2.5, "x\n\"y\\", true, false, null, {}], "b": {"c": -3e2}} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v -> (
      (match J.member "a" v with
      | Some (J.Arr [ J.Num 1.0; J.Num 2.5; J.Str s; J.Bool true; J.Bool false;
                      J.Null; J.Obj [] ]) ->
          Alcotest.(check string) "string escapes" "x\n\"y\\" s
      | _ -> Alcotest.fail "array shape");
      match Option.bind (J.member "b" v) (J.member "c") with
      | Some (J.Num f) -> Alcotest.(check (float 1e-9)) "exponent" (-300.0) f
      | _ -> Alcotest.fail "nested member"));
  (match J.parse "{\"unterminated\": " with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated JSON");
  match J.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

let test_bench_gate_pass () =
  (* A baseline regenerated from the current build must pass the gate. *)
  match Workloads.Bench_gate.check_string (Workloads.Bench_gate.render_anchors ()) with
  | Error e -> Alcotest.failf "gate errored: %s" e
  | Ok verdict ->
      List.iter
        (fun (c : Workloads.Bench_gate.check) ->
          Alcotest.(check bool) (c.name ^ ": " ^ c.detail) true c.ok)
        verdict;
      Alcotest.(check bool) "verdict passes" true
        (Workloads.Bench_gate.pass verdict);
      (* The gate actually looked at the anchors: one check per table-3 row
         and two per table-4 row, plus coverage and schema, plus the
         backend-pinning block (default-is-pks and one re-derivation per
         table-3/table-4 row under an explicit PKS backend). *)
      Alcotest.(check int) "check count"
        (1 (* schema *)
        + List.length (Workloads.Eval.table3 ()) + 1
        + (2 * List.length (Workloads.Eval.table4 ())) + 1
        + 1 (* backend/default *)
        + List.length (Workloads.Eval.table3 ()) (* backend/table3-pks/* *)
        + List.length (Workloads.Eval.table4 ()) (* backend/table4-pks/* *)
        + 3 (* wall + gc-minor + gc-major, vacuous without baseline fields *))
        (List.length verdict)

let replace_first ~sub ~by s =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then s
    else if String.sub s i n = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
    else find (i + 1)
  in
  find 0

let test_bench_gate_seeded_failure () =
  (* Perturb one anchor: the EMC round trip is 1224 in the rendered
     baseline; a baseline claiming 1225 must fail on exactly that check. *)
  let anchors = Workloads.Bench_gate.render_anchors () in
  let seeded = replace_first ~sub:"\"cycles\": 1224" ~by:"\"cycles\": 1225" anchors in
  Alcotest.(check bool) "anchor present and perturbed" true (seeded <> anchors);
  match Workloads.Bench_gate.check_string seeded with
  | Error e -> Alcotest.failf "gate errored: %s" e
  | Ok verdict ->
      Alcotest.(check bool) "seeded mismatch fails" false
        (Workloads.Bench_gate.pass verdict);
      (match Workloads.Bench_gate.failures verdict with
      | [ f ] ->
          Alcotest.(check bool) "failure names the anchor" true
            (f.Workloads.Bench_gate.name = "table3/EMC.cycles")
      | fs -> Alcotest.failf "expected exactly 1 failure, got %d" (List.length fs));
      (* Dropping a row entirely trips the coverage check instead. *)
      let missing_row =
        match Workloads.Bench_gate.check_string "{\"schema\": \"erebor-bench-sim/1\", \"table3\": [], \"table4\": []}" with
        | Ok v -> v
        | Error e -> Alcotest.failf "gate errored: %s" e
      in
      Alcotest.(check bool) "empty anchor tables fail coverage" false
        (Workloads.Bench_gate.pass missing_row)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "workloads"
    [
      ( "llm",
        [
          Alcotest.test_case "train/generate" `Quick test_llm_train_generate;
          Alcotest.test_case "deterministic" `Quick test_llm_deterministic_given_rng;
          Alcotest.test_case "bad order" `Quick test_llm_rejects_bad_order;
        ] );
      ( "retrieval",
        [
          Alcotest.test_case "hashmap basics" `Quick test_hashmap_basic;
          Alcotest.test_case "hashmap rejects" `Quick test_hashmap_rejects;
          Alcotest.test_case "synthetic db" `Quick test_synthetic_db;
          qt prop_hashmap_model;
        ] );
      ( "graph",
        [
          Alcotest.test_case "csr structure" `Quick test_csr_structure;
          Alcotest.test_case "pagerank properties" `Quick test_pagerank_properties;
          Alcotest.test_case "empty graph" `Quick test_pagerank_empty;
        ] );
      ( "ids",
        [
          Alcotest.test_case "scores" `Quick test_ids_scores;
          Alcotest.test_case "sketch cosine" `Quick test_sketch_cosine;
        ] );
      ( "imageproc",
        [
          Alcotest.test_case "pipeline" `Quick test_image_pipeline;
          Alcotest.test_case "segment count" `Quick test_segments_counts_blobs;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "table 5 anchors" `Quick test_profiles_match_table5;
          Alcotest.test_case "spec scaling" `Quick test_spec_scaling;
        ] );
      ( "benches",
        [
          Alcotest.test_case "lmbench list" `Quick test_lmbench_list;
          Alcotest.test_case "syscall overhead" `Quick test_lmbench_syscall_overhead;
          Alcotest.test_case "pagefault worst" `Slow test_lmbench_pagefault_worst;
          Alcotest.test_case "netserve shape" `Slow test_netserve_shape;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "fig9 grid: jobs-independent + conserving" `Quick
            test_attrib_determinism;
        ] );
      ( "bench-gate",
        [
          Alcotest.test_case "json parser" `Quick test_bench_gate_json;
          Alcotest.test_case "current anchors pass" `Quick test_bench_gate_pass;
          Alcotest.test_case "seeded mismatch fails" `Quick
            test_bench_gate_seeded_failure;
        ] );
    ]
