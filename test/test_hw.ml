(* Tests for the simulated hardware substrate. *)

open Hw


let expect_fault name f check =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected a fault")
  | exception Fault.Fault flt ->
      if not (check flt) then
        Alcotest.fail (Printf.sprintf "%s: unexpected fault %s" name (Fault.to_string flt))

let is_pf = function Fault.Page_fault _ -> true | _ -> false
let is_pkey_pf = function Fault.Page_fault { pkey_violation; _ } -> pkey_violation | _ -> false
let is_gp = function Fault.General_protection _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Phys_mem                                                            *)
(* ------------------------------------------------------------------ *)

let test_phys_mem_rw () =
  let mem = Phys_mem.create ~frames:16 in
  Alcotest.(check int) "unwritten reads zero" 0 (Phys_mem.read_u8 mem 0x1234);
  Alcotest.(check bool) "not backed before write" false (Phys_mem.page_is_backed mem 1);
  Phys_mem.write_u8 mem 0x1234 0xAB;
  Alcotest.(check int) "read back" 0xAB (Phys_mem.read_u8 mem 0x1234);
  Alcotest.(check bool) "backed after write" true (Phys_mem.page_is_backed mem 1);
  Alcotest.(check int) "one backed frame" 1 (Phys_mem.backed_count mem);
  Phys_mem.write_u64 mem 0x2000 0x1122334455667788L;
  Alcotest.(check int64) "u64 roundtrip" 0x1122334455667788L (Phys_mem.read_u64 mem 0x2000)

let test_phys_mem_cross_page () =
  let mem = Phys_mem.create ~frames:4 in
  let data = Bytes.init 6000 (fun i -> Char.chr (i mod 251)) in
  Phys_mem.write_bytes mem 100 data;
  Alcotest.(check bytes) "cross-page blit" data (Phys_mem.read_bytes mem 100 6000)

let test_phys_mem_bounds () =
  let mem = Phys_mem.create ~frames:2 in
  Alcotest.check_raises "oob read" (Invalid_argument "Phys_mem: address 0x2000 out of range")
    (fun () -> ignore (Phys_mem.read_u8 mem 0x2000));
  Alcotest.check_raises "u64 page straddle"
    (Invalid_argument "Phys_mem.read_u64: crosses page boundary") (fun () ->
      ignore (Phys_mem.read_u64 mem 0xffc))

let test_phys_mem_zero () =
  let mem = Phys_mem.create ~frames:2 in
  Phys_mem.write_u8 mem 0x10 0xFF;
  Phys_mem.zero_page mem 0;
  Alcotest.(check int) "zeroed" 0 (Phys_mem.read_u8 mem 0x10)

let test_phys_mem_blit () =
  let mem = Phys_mem.create ~frames:4 in
  let data = Bytes.init 5000 (fun i -> Char.chr ((i * 7) mod 256)) in
  (* blit_from at an offset, cross-page destination. *)
  Phys_mem.blit_from mem 0x800 data ~off:100 ~len:3000;
  let back = Bytes.make 3200 '\xff' in
  Phys_mem.blit_to mem 0x800 back ~off:100 ~len:3000;
  Alcotest.(check bytes) "blit roundtrip (offset window)"
    (Bytes.sub data 100 3000) (Bytes.sub back 100 3000);
  Alcotest.(check char) "bytes outside the window untouched" '\xff' (Bytes.get back 50);
  (* copy across a page boundary, then verify via read_bytes. *)
  Phys_mem.copy mem ~src:0x800 ~dst:0x2800 ~len:3000;
  Alcotest.(check bytes) "copy" (Bytes.sub data 100 3000) (Phys_mem.read_bytes mem 0x2800 3000);
  (* Zero-length operations are no-ops, not errors. *)
  Phys_mem.blit_from mem 0x0 data ~off:0 ~len:0;
  Phys_mem.blit_to mem 0x0 back ~off:0 ~len:0;
  Alcotest.check_raises "oob blit"
    (Invalid_argument "Phys_mem: address 0x4000 out of range") (fun () ->
      Phys_mem.blit_from mem 0x3c00 data ~off:0 ~len:2000)

(* ------------------------------------------------------------------ *)
(* Pte                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pte_roundtrip () =
  let flags =
    { Pte.present = true; writable = false; user = true; nx = true; pkey = 13;
      accessed = false; dirty = true }
  in
  let pte = Pte.make ~pfn:0xABCDE flags in
  Alcotest.(check int) "pfn" 0xABCDE (Pte.pfn pte);
  Alcotest.(check bool) "present" true (Pte.present pte);
  Alcotest.(check bool) "writable" false (Pte.writable pte);
  Alcotest.(check bool) "user" true (Pte.user pte);
  Alcotest.(check bool) "nx" true (Pte.nx pte);
  Alcotest.(check int) "pkey" 13 (Pte.pkey pte);
  Alcotest.(check bool) "dirty" true (Pte.dirty pte);
  let pte2 = Pte.set_pkey (Pte.set_writable pte true) 5 in
  Alcotest.(check bool) "set writable" true (Pte.writable pte2);
  Alcotest.(check int) "set pkey" 5 (Pte.pkey pte2);
  Alcotest.(check int) "pfn preserved" 0xABCDE (Pte.pfn pte2)

let prop_pte_flags =
  QCheck.Test.make ~name:"pte flags roundtrip" ~count:200
    QCheck.(
      tup7 bool bool bool bool (int_bound 15) bool (int_bound ((1 lsl 30) - 1)))
    (fun (present, writable, user, nx, pkey, dirty, pfn) ->
      let flags = { Pte.present; writable; user; nx; pkey; accessed = false; dirty } in
      let pte = Pte.make ~pfn flags in
      Pte.flags pte = { flags with accessed = false } && Pte.pfn pte = pfn)

(* ------------------------------------------------------------------ *)
(* Pks                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pks_encode_decode () =
  let rights = Array.make 16 Pks.allow_all in
  rights.(1) <- Pks.no_access;
  rights.(15) <- Pks.read_only;
  let pkrs = Pks.encode rights in
  let decoded = Pks.decode pkrs in
  Alcotest.(check bool) "key1 AD" true decoded.(1).Pks.access_disable;
  Alcotest.(check bool) "key15 WD" true decoded.(15).Pks.write_disable;
  Alcotest.(check bool) "key0 free" false decoded.(0).Pks.access_disable

let test_pks_permits () =
  let rights = Array.make 16 Pks.allow_all in
  rights.(2) <- Pks.read_only;
  rights.(3) <- Pks.no_access;
  let pkrs = Pks.encode rights in
  Alcotest.(check bool) "key0 write" true (Pks.permits ~pkrs ~key:0 ~write:true);
  Alcotest.(check bool) "key2 read" true (Pks.permits ~pkrs ~key:2 ~write:false);
  Alcotest.(check bool) "key2 write denied" false (Pks.permits ~pkrs ~key:2 ~write:true);
  Alcotest.(check bool) "key3 read denied" false (Pks.permits ~pkrs ~key:3 ~write:false)

let test_pks_set_key () =
  let pkrs = Pks.encode (Array.make 16 Pks.allow_all) in
  let pkrs = Pks.set_key ~pkrs ~key:7 Pks.no_access in
  Alcotest.(check bool) "key7 denied" false (Pks.permits ~pkrs ~key:7 ~write:false);
  Alcotest.(check bool) "key6 untouched" true (Pks.permits ~pkrs ~key:6 ~write:true);
  let pkrs = Pks.set_key ~pkrs ~key:7 Pks.allow_all in
  Alcotest.(check bool) "key7 restored" true (Pks.permits ~pkrs ~key:7 ~write:true)

(* ------------------------------------------------------------------ *)
(* Page_table                                                          *)
(* ------------------------------------------------------------------ *)

let make_env ?(frames = 512) () =
  let mem = Phys_mem.create ~frames in
  let next = ref 1 in
  let alloc_ptp () =
    let pfn = !next in
    incr next;
    pfn
  in
  let write_pte ~pte_addr pte = Phys_mem.write_u64 mem pte_addr pte in
  (mem, alloc_ptp, write_pte)

let test_pt_map_walk () =
  let mem, alloc_ptp, write_pte = make_env () in
  let root = alloc_ptp () in
  let vaddr = 0x7f_1234_5000 in
  let pte = Pte.make ~pfn:100 { Pte.default_flags with user = true } in
  Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr pte;
  (match Page_table.walk mem ~root_pfn:root vaddr with
  | None -> Alcotest.fail "mapping missing"
  | Some w ->
      Alcotest.(check int) "leaf pfn" 100 (Pte.pfn w.Page_table.pte);
      Alcotest.(check bool) "combined user" true w.Page_table.user;
      Alcotest.(check bool) "combined writable" true w.Page_table.writable);
  Alcotest.(check bool) "unmapped sibling absent" true
    (Page_table.walk mem ~root_pfn:root (vaddr + 0x1000) = None)

let test_pt_unmap () =
  let mem, alloc_ptp, write_pte = make_env () in
  let root = alloc_ptp () in
  let vaddr = 0x1000_0000 in
  Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
    (Pte.make ~pfn:7 Pte.default_flags);
  Page_table.unmap mem ~write_pte ~root_pfn:root ~vaddr;
  Alcotest.(check bool) "gone" true (Page_table.walk mem ~root_pfn:root vaddr = None);
  (* Unmapping an address with no intermediate tables is a no-op. *)
  Page_table.unmap mem ~write_pte ~root_pfn:root ~vaddr:0x7fff_0000_0000

let test_pt_update () =
  let mem, alloc_ptp, write_pte = make_env () in
  let root = alloc_ptp () in
  let vaddr = 0x2000 in
  Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
    (Pte.make ~pfn:9 Pte.default_flags);
  let changed =
    Page_table.update mem ~write_pte ~root_pfn:root ~vaddr (fun pte ->
        Pte.set_writable pte false)
  in
  Alcotest.(check bool) "updated" true changed;
  (match Page_table.walk mem ~root_pfn:root vaddr with
  | Some w -> Alcotest.(check bool) "now read-only" false (Pte.writable w.Page_table.pte)
  | None -> Alcotest.fail "lost mapping");
  Alcotest.(check bool) "update of unmapped returns false" false
    (Page_table.update mem ~write_pte ~root_pfn:root ~vaddr:0xdead000 Fun.id)

let test_pt_distinct_vaddrs () =
  let mem, alloc_ptp, write_pte = make_env ~frames:2048 () in
  let root = alloc_ptp () in
  (* Addresses chosen to differ at every level of the tree. *)
  let cases =
    [ (0x0000_0000_1000, 11); (0x0000_0020_0000, 22); (0x0000_4000_0000, 33);
      (0x0080_0000_0000, 44); (0x7fff_ffff_f000, 55) ]
  in
  List.iter
    (fun (vaddr, pfn) ->
      Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
        (Pte.make ~pfn Pte.default_flags))
    cases;
  List.iter
    (fun (vaddr, pfn) ->
      match Page_table.walk mem ~root_pfn:root vaddr with
      | Some w -> Alcotest.(check int) "pfn" pfn (Pte.pfn w.Page_table.pte)
      | None -> Alcotest.fail "missing mapping")
    cases

(* Random map/unmap sequences agree with a model map. *)
let prop_pt_model =
  QCheck.Test.make ~name:"page table agrees with model" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (pair (int_bound 15) (int_bound 200)))
    (fun ops ->
      let mem, alloc_ptp, write_pte = make_env ~frames:4096 () in
      let root = alloc_ptp () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (slot, pfn) ->
          let vaddr = 0x1_0000_0000 + (slot * 0x1000) in
          if pfn < 20 then begin
            (* unmap *)
            Hw.Page_table.unmap mem ~write_pte ~root_pfn:root ~vaddr;
            Hashtbl.remove model vaddr
          end
          else begin
            let pfn = pfn + 1000 in
            Hw.Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr
              (Hw.Pte.make ~pfn Hw.Pte.default_flags);
            Hashtbl.replace model vaddr pfn
          end)
        ops;
      List.for_all
        (fun slot ->
          let vaddr = 0x1_0000_0000 + (slot * 0x1000) in
          match (Hw.Page_table.walk mem ~root_pfn:root vaddr, Hashtbl.find_opt model vaddr) with
          | Some w, Some pfn -> w.Hw.Page_table.pfn = pfn
          | None, None -> true
          | _ -> false)
        (List.init 16 Fun.id))

(* ------------------------------------------------------------------ *)
(* Access checks                                                       *)
(* ------------------------------------------------------------------ *)

let base_ctx =
  { Access.user_mode = false; wp = true; smep = true; smap = true; pks = true;
    ac = false; pkrs = 0L }

let user_page = { Access.user = true; writable = true; nx = false; pkey = 0 }
let kernel_page = { Access.user = false; writable = true; nx = false; pkey = 0 }

let check_ok name ctx kind tr =
  match Access.check ctx ~kind ~addr:0x1000 tr with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Printf.sprintf "%s: unexpected %s" name (Fault.to_string f))

let check_denied name ctx kind tr pred =
  match Access.check ctx ~kind ~addr:0x1000 tr with
  | Ok () -> Alcotest.fail (name ^ ": expected denial")
  | Error f ->
      if not (pred f) then
        Alcotest.fail (Printf.sprintf "%s: wrong fault %s" name (Fault.to_string f))

let test_access_user_mode () =
  let ctx = { base_ctx with Access.user_mode = true } in
  check_ok "user reads user page" ctx Fault.Read user_page;
  check_ok "user writes user page" ctx Fault.Write user_page;
  check_denied "user reads kernel page" ctx Fault.Read kernel_page is_pf;
  check_denied "user writes ro page" ctx Fault.Write { user_page with Access.writable = false } is_pf;
  check_denied "user executes nx" ctx Fault.Execute { user_page with Access.nx = true } is_pf;
  check_ok "user executes user page" ctx Fault.Execute user_page

let test_access_smep_smap () =
  check_denied "smap blocks kernel read of user page" base_ctx Fault.Read user_page is_pf;
  check_denied "smap blocks kernel write of user page" base_ctx Fault.Write user_page is_pf;
  check_ok "stac bypasses smap" { base_ctx with Access.ac = true } Fault.Read user_page;
  check_denied "smep blocks kernel exec of user page" base_ctx Fault.Execute user_page is_pf;
  check_ok "kernel exec of kernel page" base_ctx Fault.Execute kernel_page;
  let no_smap = { base_ctx with Access.smap = false } in
  check_ok "no smap: kernel reads user page" no_smap Fault.Read user_page

let test_access_wp () =
  let ro = { kernel_page with Access.writable = false } in
  check_denied "wp blocks kernel write to ro" base_ctx Fault.Write ro is_pf;
  check_ok "wp off allows kernel write to ro" { base_ctx with Access.wp = false } Fault.Write ro

let test_access_pks () =
  let protected_page = { kernel_page with Access.pkey = 3 } in
  let pkrs_block = Pks.set_key ~pkrs:0L ~key:3 Pks.no_access in
  let pkrs_ro = Pks.set_key ~pkrs:0L ~key:3 Pks.read_only in
  check_denied "AD blocks read" { base_ctx with Access.pkrs = pkrs_block } Fault.Read
    protected_page is_pkey_pf;
  check_denied "WD blocks write" { base_ctx with Access.pkrs = pkrs_ro } Fault.Write
    protected_page is_pkey_pf;
  check_ok "WD allows read" { base_ctx with Access.pkrs = pkrs_ro } Fault.Read protected_page;
  check_ok "pks disabled ignores keys"
    { base_ctx with Access.pks = false; pkrs = pkrs_block }
    Fault.Read protected_page;
  (* PKS never applies to instruction fetch. *)
  check_ok "fetch ignores pkey" { base_ctx with Access.pkrs = pkrs_block } Fault.Execute
    protected_page

(* ------------------------------------------------------------------ *)
(* Cpu end-to-end translation                                          *)
(* ------------------------------------------------------------------ *)

let make_cpu ?(frames = 2048) () =
  let mem = Phys_mem.create ~frames in
  let clock = Cycles.clock () in
  let cpu = Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let next = ref 1 in
  let alloc_ptp () =
    let pfn = !next in
    incr next;
    pfn
  in
  let write_pte ~pte_addr pte = Phys_mem.write_u64 mem pte_addr pte in
  let root = alloc_ptp () in
  Cpu.write_cr3 cpu ~root_pfn:root;
  let map vaddr pfn flags =
    Page_table.map mem ~write_pte ~alloc_ptp ~root_pfn:root ~vaddr (Pte.make ~pfn flags)
  in
  (cpu, mem, map, root)

let test_cpu_translate_rw () =
  let cpu, _mem, map, _ = make_cpu () in
  map 0x40_0000 200 Pte.default_flags;
  Cpu.write_u64 cpu 0x40_0008 0xfeedL;
  Alcotest.(check int64) "va rw roundtrip" 0xfeedL (Cpu.read_u64 cpu 0x40_0008);
  expect_fault "unmapped" (fun () -> Cpu.read_u8 cpu 0xdead_0000) (function
    | Fault.Page_fault { present; _ } -> not present
    | _ -> false)

let test_cpu_dirty_accessed () =
  let cpu, mem, map, root = make_cpu () in
  map 0x50_0000 201 Pte.default_flags;
  ignore (Cpu.read_u8 cpu 0x50_0000);
  (match Page_table.walk mem ~root_pfn:root 0x50_0000 with
  | Some w ->
      Alcotest.(check bool) "accessed set" true (Pte.accessed w.Page_table.pte);
      Alcotest.(check bool) "dirty clear after read" false (Pte.dirty w.Page_table.pte)
  | None -> Alcotest.fail "lost mapping");
  Cpu.flush_tlb cpu;
  Cpu.write_u8 cpu 0x50_0000 1;
  match Page_table.walk mem ~root_pfn:root 0x50_0000 with
  | Some w -> Alcotest.(check bool) "dirty after write" true (Pte.dirty w.Page_table.pte)
  | None -> Alcotest.fail "lost mapping"

let test_cpu_user_kernel () =
  let cpu, _mem, map, _ = make_cpu () in
  Cpu.set_cr_bit cpu ~reg:`Cr4 Cr.cr4_smap true;
  Cpu.set_cr_bit cpu ~reg:`Cr4 Cr.cr4_smep true;
  Cpu.set_cr_bit cpu ~reg:`Cr0 Cr.cr0_wp true;
  map 0x1000 300 { Pte.default_flags with user = true };
  map 0x10_0000 301 Pte.default_flags;
  (* Supervisor cannot touch user page under SMAP... *)
  expect_fault "smap" (fun () -> Cpu.read_u8 cpu 0x1000) is_pf;
  (* ...unless AC is set via stac. *)
  Cpu.stac cpu;
  ignore (Cpu.read_u8 cpu 0x1000);
  Cpu.clac cpu;
  expect_fault "smap again" (fun () -> Cpu.read_u8 cpu 0x1000) is_pf;
  (* User cannot touch kernel page. *)
  cpu.Cpu.mode <- Cpu.User;
  expect_fault "user to kernel" (fun () -> Cpu.read_u8 cpu 0x10_0000) is_pf;
  ignore (Cpu.read_u8 cpu 0x1000)

let test_cpu_privileged_from_user () =
  let cpu, _mem, _map, _ = make_cpu () in
  cpu.Cpu.mode <- Cpu.User;
  expect_fault "wrmsr" (fun () -> Cpu.write_msr cpu Msr.ia32_lstar 1L) is_gp;
  expect_fault "rdmsr" (fun () -> Cpu.read_msr cpu Msr.ia32_lstar) is_gp;
  expect_fault "mov cr3" (fun () -> Cpu.write_cr3 cpu ~root_pfn:5) is_gp;
  expect_fault "mov cr4" (fun () -> Cpu.set_cr_bit cpu ~reg:`Cr4 Cr.cr4_pks true) is_gp;
  expect_fault "stac" (fun () -> Cpu.stac cpu) is_gp;
  expect_fault "lidt" (fun () -> Cpu.lidt cpu (Idt.create ())) is_gp

let test_cpu_pks_enforcement () =
  let cpu, _mem, map, _ = make_cpu () in
  Cpu.set_cr_bit cpu ~reg:`Cr4 Cr.cr4_pks true;
  Cpu.set_cr_bit cpu ~reg:`Cr0 Cr.cr0_wp true;
  map 0x20_0000 310 { Pte.default_flags with pkey = 5 };
  (* Key 5 open: access works. *)
  Cpu.write_u8 cpu 0x20_0000 7;
  (* Close key 5 for writes. *)
  Cpu.write_msr cpu Msr.ia32_pkrs (Pks.set_key ~pkrs:0L ~key:5 Pks.read_only);
  ignore (Cpu.read_u8 cpu 0x20_0000);
  expect_fault "pks wd" (fun () -> Cpu.write_u8 cpu 0x20_0000 8) is_pkey_pf;
  (* Close entirely. *)
  Cpu.write_msr cpu Msr.ia32_pkrs (Pks.set_key ~pkrs:0L ~key:5 Pks.no_access);
  expect_fault "pks ad" (fun () -> ignore (Cpu.read_u8 cpu 0x20_0000)) is_pkey_pf

let test_cpu_tlb_behaviour () =
  let cpu, _mem, map, _ = make_cpu () in
  map 0x30_0000 320 Pte.default_flags;
  ignore (Cpu.read_u8 cpu 0x30_0000);
  let misses0 = Tlb.misses cpu.Cpu.tlb in
  ignore (Cpu.read_u8 cpu 0x30_0000);
  Alcotest.(check int) "second access hits TLB" misses0 (Tlb.misses cpu.Cpu.tlb);
  Cpu.invlpg cpu 0x30_0000;
  ignore (Cpu.read_u8 cpu 0x30_0000);
  Alcotest.(check int) "invlpg forces a walk" (misses0 + 1) (Tlb.misses cpu.Cpu.tlb)

let test_cpu_tlb_staleness_semantics () =
  (* The TLB legally serves a cached translation until somebody flushes:
     this is the hazard the privop tables must close (their PTE stores pair
     with a flush — see test_kernel/test_erebor). Pin both halves here. *)
  let cpu, mem, map, root = make_cpu () in
  Cpu.set_cr_bit cpu ~reg:`Cr0 Cr.cr0_wp true;
  let vaddr = 0x60_0000 in
  map vaddr 330 Pte.default_flags;
  Cpu.write_u8 cpu vaddr 1;
  (* Downgrade the leaf to read-only behind the TLB's back. *)
  let pte_addr = Option.get (Page_table.leaf_addr mem ~root_pfn:root vaddr) in
  let ro = Pte.set_writable (Phys_mem.read_u64 mem pte_addr) false in
  Phys_mem.write_u64 mem pte_addr ro;
  (* Stale entry still honoured... *)
  Cpu.write_u8 cpu vaddr 2;
  (* ...until the flush, after which the downgrade bites. *)
  Cpu.flush_tlb cpu;
  ignore (Cpu.read_u8 cpu vaddr);
  expect_fault "write after downgrade+flush" (fun () -> Cpu.write_u8 cpu vaddr 3) is_pf

let test_cpu_hot_path_no_alloc () =
  (* The TLB-hit translate/access path must not allocate: read_u8/write_u8
     and read_into are the per-byte/per-packet hot loops of the whole
     simulator. Warm the TLB and the permission-context memo first. *)
  let cpu, _mem, map, _ = make_cpu () in
  map 0x70_0000 340 Pte.default_flags;
  let buf = Bytes.create 4096 in
  Cpu.write_u8 cpu 0x70_0000 7;
  ignore (Cpu.read_u8 cpu 0x70_0000);
  Cpu.read_into cpu 0x70_0000 buf ~off:0 ~len:4096;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Cpu.read_u8 cpu 0x70_0000);
    Cpu.write_u8 cpu 0x70_0010 5
  done;
  for _ = 1 to 100 do
    Cpu.read_into cpu 0x70_0000 buf ~off:0 ~len:4096
  done;
  let allocated = Gc.minor_words () -. before in
  (* Allow a few words of slack for the measurement itself; 20 200 accesses
     must stay far below one word per operation. *)
  Alcotest.(check bool)
    (Printf.sprintf "hot path allocates (%.0f words)" allocated)
    true (allocated < 256.0)

let test_cpu_scrub_regs () =
  let cpu, _mem, _map, _ = make_cpu () in
  cpu.Cpu.regs.(3) <- 42L;
  let saved = Cpu.snapshot_regs cpu in
  Cpu.scrub_regs cpu;
  Alcotest.(check int64) "scrubbed" 0L cpu.Cpu.regs.(3);
  Cpu.restore_regs cpu saved;
  Alcotest.(check int64) "restored" 42L cpu.Cpu.regs.(3)

(* ------------------------------------------------------------------ *)
(* Cet                                                                 *)
(* ------------------------------------------------------------------ *)

let ibt_on = Msr.s_cet_ibt_bit
let sst_on = Msr.s_cet_shstk_bit

let test_cet_ibt () =
  let endbr_at addr = addr = 0x100 in
  (match Cet.check_branch ~s_cet:ibt_on ~endbr_at ~target:0x100 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "endbr target rejected");
  (match Cet.check_branch ~s_cet:ibt_on ~endbr_at ~target:0x104 with
  | Error (Fault.Control_protection _) -> ()
  | _ -> Alcotest.fail "missing endbr accepted");
  match Cet.check_branch ~s_cet:0L ~endbr_at ~target:0x104 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "IBT disabled should not check"

let test_cet_shadow_stack () =
  let engine = Cet.create () in
  let stack = Cet.create_stack ~base:0x9000 in
  (match Cet.activate engine stack with Ok () -> () | Error _ -> Alcotest.fail "activate");
  Cet.on_call ~s_cet:sst_on engine ~ret_addr:0x500;
  Cet.on_call ~s_cet:sst_on engine ~ret_addr:0x600;
  Alcotest.(check int) "depth" 2 (Cet.depth stack);
  (match Cet.on_ret ~s_cet:sst_on engine ~ret_addr:0x600 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "good return rejected");
  (match Cet.on_ret ~s_cet:sst_on engine ~ret_addr:0xBAD with
  | Error (Fault.Control_protection _) -> ()
  | _ -> Alcotest.fail "tampered return accepted");
  (* Stack still holds the 0x500 frame; drain it and underflow. *)
  (match Cet.on_ret ~s_cet:sst_on engine ~ret_addr:0x500 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "drain");
  match Cet.on_ret ~s_cet:sst_on engine ~ret_addr:0x1 with
  | Error (Fault.Control_protection _) -> ()
  | _ -> Alcotest.fail "underflow accepted"

let test_cet_token_exclusivity () =
  let a = Cet.create () and b = Cet.create () in
  let stack = Cet.create_stack ~base:0x9000 in
  (match Cet.activate a stack with Ok () -> () | Error _ -> Alcotest.fail "first activate");
  (match Cet.activate b stack with
  | Error (Fault.Control_protection _) -> ()
  | _ -> Alcotest.fail "token double-claim accepted");
  Cet.deactivate a;
  match Cet.activate b stack with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "activate after release"

(* ------------------------------------------------------------------ *)
(* Isa                                                                 *)
(* ------------------------------------------------------------------ *)

let benign_program =
  [ Isa.Endbr; Isa.Mov_imm (Isa.R0, 1234); Isa.Add (Isa.R0, Isa.R1);
    Isa.Load (Isa.R2, Isa.R0); Isa.Store (Isa.R0, Isa.R2); Isa.Call 4;
    Isa.Jmp (-2); Isa.Syscall; Isa.Cpuid; Isa.Clac; Isa.Ret ]


let test_isa_roundtrip () =
  match Isa.disassemble (Isa.assemble benign_program) with
  | Some got -> Alcotest.(check int) "count" (List.length benign_program) (List.length got)
  | None -> Alcotest.fail "disassemble failed"

let test_isa_scan_clean () =
  Alcotest.(check int) "benign program scans clean" 0
    (List.length (Isa.scan (Isa.assemble benign_program)))

let test_isa_scan_catches_sensitive () =
  List.iter
    (fun instr ->
      let code = Isa.assemble [ Isa.Nop; instr; Isa.Nop ] in
      match Isa.scan code with
      | [] -> Alcotest.failf "scan missed %a" Isa.pp_instr instr
      | { Isa.offset; _ } :: _ -> Alcotest.(check int) "offset" 4 offset)
    [ Isa.Mov_cr (0, Isa.R1); Isa.Wrmsr; Isa.Stac; Isa.Lidt; Isa.Tdcall ]

let test_isa_scan_unaligned () =
  (* A sensitive byte hidden inside data must still be flagged: the scanner
     is byte-level, not instruction-level. *)
  let code = Bytes.cat (Isa.assemble [ Isa.Nop ]) (Bytes.of_string "\xc5AB\x00") in
  Alcotest.(check bool) "unaligned tdcall byte caught" true (List.length (Isa.scan code) > 0)

let test_isa_imm_range () =
  Alcotest.check_raises "imm too large" (Invalid_argument "Isa: immediate out of 14-bit range")
    (fun () -> ignore (Isa.encode (Isa.Mov_imm (Isa.R0, 10000))));
  match Isa.decode (Isa.encode (Isa.Mov_imm (Isa.R3, -4000))) 0 with
  | Some (Isa.Mov_imm (Isa.R3, -4000)) -> ()
  | _ -> Alcotest.fail "negative immediate roundtrip"

let every_instr =
  (* One representative of every constructor, plus operand edge cases:
     extreme registers, immediate range ends, every legal CR index. *)
  [ Isa.Nop; Isa.Endbr;
    Isa.Mov_imm (Isa.R0, 0); Isa.Mov_imm (Isa.R7, 8191);
    Isa.Mov_imm (Isa.R3, -8192);
    Isa.Load (Isa.R0, Isa.R7); Isa.Store (Isa.R7, Isa.R0);
    Isa.Add (Isa.R4, Isa.R4);
    Isa.Jmp 8191; Isa.Jmp (-8192); Isa.Call 1; Isa.Call (-1);
    Isa.Ret; Isa.Syscall; Isa.Iret; Isa.Cpuid; Isa.Clac;
    Isa.Senduipi Isa.R5;
    Isa.Mov_cr (0, Isa.R1); Isa.Mov_cr (3, Isa.R2); Isa.Mov_cr (4, Isa.R7);
    Isa.Wrmsr; Isa.Stac; Isa.Lidt; Isa.Tdcall ]

let test_isa_roundtrip_every_opcode () =
  List.iter
    (fun instr ->
      match Isa.decode (Isa.encode instr) 0 with
      | Some got when got = instr -> ()
      | Some got ->
          Alcotest.failf "%a decoded as %a" Isa.pp_instr instr Isa.pp_instr got
      | None -> Alcotest.failf "%a failed to decode" Isa.pp_instr instr)
    every_instr

let test_isa_decode_rejects () =
  let slot l = Bytes.of_string (String.init 4 (fun i -> Char.chr (List.nth l i))) in
  (* Unknown opcode byte. *)
  Alcotest.(check bool) "unknown opcode" true (Isa.decode (slot [0x7f;0;0;0]) 0 = None);
  (* Operand register code out of range. *)
  Alcotest.(check bool) "bad reg (load)" true (Isa.decode (slot [0x03;8;0;0]) 0 = None);
  Alcotest.(check bool) "bad reg (mov_imm)" true (Isa.decode (slot [0x02;9;0;0]) 0 = None);
  (* CR index outside {0,3,4}. *)
  Alcotest.(check bool) "bad cr index" true (Isa.decode (slot [0xc0;2;0;0]) 0 = None);
  (* Truncated tail and out-of-range offsets. *)
  let one = Isa.encode Isa.Nop in
  Alcotest.(check bool) "truncated" true (Isa.decode one 1 = None);
  Alcotest.(check bool) "negative offset" true (Isa.decode one (-4) = None);
  Alcotest.(check bool) "past end" true (Isa.decode one 4 = None)

(* ------------------------------------------------------------------ *)
(* Icode: decoded-instruction cache                                    *)
(* ------------------------------------------------------------------ *)

let test_icode_decode_matches_isa () =
  (* Every slot of the decoded program re-materializes to exactly what the
     one-shot decoder sees. *)
  let code = Isa.assemble every_instr in
  match (Icode.decode code, Isa.disassemble code) with
  | Ok p, Some instrs ->
      Alcotest.(check int) "length" (List.length instrs) (Icode.length p);
      List.iteri
        (fun i instr ->
          if Icode.instr p i <> instr then
            Alcotest.failf "slot %d: %a <> %a" i Isa.pp_instr (Icode.instr p i)
              Isa.pp_instr instr)
        instrs
  | Error off, _ -> Alcotest.failf "icode decode failed at +%d" off
  | _, None -> Alcotest.fail "disassemble failed"

let test_icode_decode_rejects () =
  (* The cache decoder rejects exactly what Isa.decode rejects, reporting
     the first bad slot's byte offset. *)
  let bad = Bytes.cat (Isa.assemble [ Isa.Nop; Isa.Ret ]) (Bytes.make 4 '\x7f') in
  (match Icode.decode bad with
  | Error 8 -> ()
  | Error off -> Alcotest.failf "wrong offset %d" off
  | Ok _ -> Alcotest.fail "undecodable slot accepted");
  match Icode.decode (Bytes.make 6 '\x00') with
  | Error 4 -> () (* trailing partial slot *)
  | Error off -> Alcotest.failf "partial slot: wrong offset %d" off
  | Ok _ -> Alcotest.fail "partial slot accepted"

(* A branchy program exercising every interpreter path: registers, scratch
   memory, subroutine call/ret, a skipped-over external call, sensitive
   retires. *)
let branchy_program =
  [ Isa.Endbr;                       (* 0 *)
    Isa.Mov_imm (Isa.R0, 24);        (* 1 *)
    Isa.Mov_imm (Isa.R1, 100);       (* 2 *)
    Isa.Store (Isa.R0, Isa.R1);      (* 3: mem[3] <- 100 *)
    Isa.Call 4;                      (* 4: -> 8 (subroutine) *)
    Isa.Call 100;                    (* 5: external, falls through *)
    Isa.Wrmsr;                       (* 6: sensitive *)
    Isa.Ret;                         (* 7: top-level -> stop *)
    Isa.Load (Isa.R2, Isa.R0);       (* 8: r2 <- mem[3] *)
    Isa.Add (Isa.R2, Isa.R1);        (* 9: r2 = 200 *)
    Isa.Ret ]                        (* 10: return to 5 *)

let test_icode_run_equivalence () =
  let code = Isa.assemble branchy_program in
  let p = match Icode.decode code with Ok p -> p | Error _ -> assert false in
  let run_with runner =
    let st = Icode.make_state () in
    let sensitive = ref 0 in
    Icode.set_sensitive_hook st (fun _ -> incr sensitive);
    let retired = runner st in
    (retired, !sensitive, List.init 8 (Icode.reg st))
  in
  let fast = run_with (fun st -> Icode.run p st ~entry:0 ~fuel:64) in
  let slow = run_with (fun st -> Icode.run_undecoded code st ~entry:0 ~fuel:64) in
  let retired, sensitive, regs = fast in
  Alcotest.(check int) "retired" 11 retired;
  Alcotest.(check int) "sensitive retires" 1 sensitive;
  Alcotest.(check int) "r2 through call/load/add" 200 (List.nth regs 2);
  Alcotest.(check bool) "decoded = undecoded" true (fast = slow)

let test_icode_cache_shares () =
  let code = Isa.assemble branchy_program in
  let h0, _ = Icode.cache_stats () in
  match (Icode.of_bytes code, Icode.of_bytes (Bytes.copy code)) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "same decoded program" true (a == b);
      let h1, _ = Icode.cache_stats () in
      Alcotest.(check bool) "second lookup hit" true (h1 > h0)
  | _ -> Alcotest.fail "decode failed"

let test_icode_steady_state_no_alloc () =
  (* The tentpole property: with a warm decoded program, the interpreter
     loop allocates nothing — minor words must not move across 10k runs. *)
  let code = Isa.assemble branchy_program in
  let p = match Icode.of_bytes code with Ok p -> p | Error _ -> assert false in
  let st = Icode.make_state () in
  ignore (Icode.run p st ~entry:0 ~fuel:64);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Icode.run p st ~entry:0 ~fuel:64)
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "zero minor words" 0.0 (w1 -. w0)

let test_icode_fuel_bounds_runaway () =
  (* Jmp 0 spins in place; fuel must bound it. *)
  let code = Isa.assemble [ Isa.Jmp 0 ] in
  let p = match Icode.decode code with Ok p -> p | Error _ -> assert false in
  let st = Icode.make_state () in
  Alcotest.(check int) "fuel cap" 1000 (Icode.run p st ~entry:0 ~fuel:1000)

let prop_isa_benign_scan_clean =
  (* Any program assembled from benign instructions scans clean. *)
  let benign_gen =
    QCheck.Gen.(
      oneof
        [ return Isa.Nop; return Isa.Endbr; return Isa.Ret; return Isa.Syscall;
          return Isa.Cpuid; return Isa.Clac; return Isa.Iret;
          map (fun v -> Isa.Mov_imm (Isa.R1, v)) (int_range (-8000) 8000);
          map (fun v -> Isa.Jmp v) (int_range (-8000) 8000) ])
  in
  QCheck.Test.make ~name:"benign assembly scans clean" ~count:100
    (QCheck.make QCheck.Gen.(list_size (1 -- 50) benign_gen))
    (fun prog -> Isa.scan (Isa.assemble prog) = [])

(* ------------------------------------------------------------------ *)
(* Image                                                               *)
(* ------------------------------------------------------------------ *)

let sample_image =
  {
    Image.entry = 0x1000;
    sections =
      [
        { Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Isa.assemble benign_program };
        { Image.name = ".data"; vaddr = 0x4000; executable = false; writable = true;
          data = Bytes.of_string "hello data" };
      ];
  }

let test_image_roundtrip () =
  match Image.parse (Image.serialize sample_image) with
  | Error e -> Alcotest.fail e
  | Ok img ->
      Alcotest.(check int) "entry" 0x1000 img.Image.entry;
      Alcotest.(check int) "sections" 2 (List.length img.Image.sections);
      Alcotest.(check int) "one exec section" 1 (List.length (Image.executable_sections img));
      (match Image.find_section img ".data" with
      | Some s -> Alcotest.(check string) "data" "hello data" (Bytes.to_string s.Image.data)
      | None -> Alcotest.fail "missing .data")

let test_image_rejects () =
  let good = Image.serialize sample_image in
  let bad_magic = Bytes.copy good in
  Bytes.set bad_magic 0 'X';
  (match Image.parse bad_magic with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Image.parse (Bytes.sub good 0 (Bytes.length good - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated accepted");
  let overlapping =
    { sample_image with
      Image.sections =
        [ { Image.name = "a"; vaddr = 0x1000; executable = false; writable = true;
            data = Bytes.make 100 'x' };
          { Image.name = "b"; vaddr = 0x1010; executable = false; writable = true;
            data = Bytes.make 100 'y' } ] }
  in
  match Image.parse (Image.serialize overlapping) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping sections accepted"

(* Mutated images must parse to Ok or Error, never crash. *)
let prop_image_fuzz =
  QCheck.Test.make ~name:"image parser total on mutations" ~count:200
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (pos, value) ->
      let good = Hw.Image.serialize sample_image in
      let mutated = Bytes.copy good in
      let pos = pos mod Bytes.length mutated in
      Bytes.set mutated pos (Char.chr value);
      match Hw.Image.parse mutated with Ok _ | Error _ -> true)

let prop_image_roundtrip =
  let section_gen =
    QCheck.Gen.(
      map3
        (fun name len exec ->
          (* vaddr assigned later to guarantee non-overlap *)
          (String.map (fun c -> Char.chr (0x41 + (Char.code c mod 26))) name, len, exec))
        (string_size (1 -- 8)) (int_range 0 200) bool)
  in
  QCheck.Test.make ~name:"image serialize/parse roundtrip" ~count:50
    (QCheck.make QCheck.Gen.(list_size (0 -- 6) section_gen))
    (fun specs ->
      let _, sections =
        List.fold_left
          (fun (va, acc) (name, len, exec) ->
            ( va + len + 0x1000,
              { Image.name; vaddr = va; executable = exec; writable = not exec;
                data = Bytes.make len 'z' }
              :: acc ))
          (0x1000, []) specs
      in
      let img = { Image.entry = 0x1000; sections = List.rev sections } in
      match Image.parse (Image.serialize img) with
      | Ok got -> got = img
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Apic / Uintr / Idt                                                  *)
(* ------------------------------------------------------------------ *)

let test_apic_fires () =
  let clock = Cycles.clock () in
  let apic = Apic.create clock ~period:1000 in
  Alcotest.(check bool) "not pending initially" false (Apic.pending apic);
  Cycles.advance clock 999;
  Alcotest.(check bool) "not yet" false (Apic.pending apic);
  Cycles.advance clock 1;
  Alcotest.(check bool) "pending at deadline" true (Apic.pending apic);
  Apic.acknowledge apic;
  Alcotest.(check int) "fired once" 1 (Apic.fired_count apic);
  Alcotest.(check bool) "re-armed" false (Apic.pending apic);
  (* A long sleep coalesces into one pending interrupt. *)
  Cycles.advance clock 10_000;
  Alcotest.(check bool) "pending after sleep" true (Apic.pending apic);
  Apic.acknowledge apic;
  Alcotest.(check bool) "coalesced" false (Apic.pending apic);
  Alcotest.(check int) "fired twice total" 2 (Apic.fired_count apic)

let test_uintr_gating () =
  let msr = Msr.create () in
  (match Uintr.senduipi ~msr ~slot:3 with
  | Uintr.Faulted (Fault.General_protection _) -> ()
  | _ -> Alcotest.fail "send with invalid TT accepted");
  Msr.write msr Msr.ia32_uintr_tt Msr.uintr_tt_valid_bit;
  (match Uintr.senduipi ~msr ~slot:3 with
  | Uintr.Delivered 3 -> ()
  | _ -> Alcotest.fail "valid send failed");
  match Uintr.senduipi ~msr ~slot:99 with
  | Uintr.Faulted _ -> ()
  | _ -> Alcotest.fail "bad slot accepted"

let test_idt_dispatch () =
  let idt = Idt.create () in
  Idt.set idt Idt.vec_pf ~handler:0xAA00;
  Alcotest.(check int) "deliver" 0xAA00 (Idt.deliver idt Idt.vec_pf);
  expect_fault "absent vector" (fun () -> Idt.deliver idt Idt.vec_timer) is_gp;
  let snapshot = Idt.copy idt in
  Idt.clear idt Idt.vec_pf;
  expect_fault "cleared" (fun () -> Idt.deliver idt Idt.vec_pf) is_gp;
  Alcotest.(check int) "copy unaffected" 0xAA00 (Idt.deliver snapshot Idt.vec_pf)

let test_cycles_clock () =
  let clock = Cycles.clock () in
  Cycles.advance clock 500;
  Alcotest.(check int) "advance" 500 (Cycles.now clock);
  Alcotest.check_raises "negative" (Invalid_argument "Cycles.advance: negative duration")
    (fun () -> Cycles.advance clock (-1));
  (* Table 3/4 calibration identities. *)
  Alcotest.(check int) "mmu total" 1345 Cycles.Cost.(emc_roundtrip + emc_service_mmu);
  Alcotest.(check int) "cr total" 1593 Cycles.Cost.(emc_roundtrip + emc_service_cr);
  Alcotest.(check int) "msr total" 1613 Cycles.Cost.(emc_roundtrip + emc_service_msr);
  Alcotest.(check int) "idt total" 1369 Cycles.Cost.(emc_roundtrip + emc_service_idt);
  Alcotest.(check int) "smap total" 1291 Cycles.Cost.(emc_roundtrip + emc_service_smap);
  Alcotest.(check int) "ghci total" 128081 Cycles.Cost.(emc_roundtrip + emc_service_ghci)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "hw"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "read/write" `Quick test_phys_mem_rw;
          Alcotest.test_case "cross page" `Quick test_phys_mem_cross_page;
          Alcotest.test_case "bounds" `Quick test_phys_mem_bounds;
          Alcotest.test_case "zero page" `Quick test_phys_mem_zero;
          Alcotest.test_case "blit windows" `Quick test_phys_mem_blit;
        ] );
      ( "pte",
        [ Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip; qt prop_pte_flags ] );
      ( "pks",
        [
          Alcotest.test_case "encode/decode" `Quick test_pks_encode_decode;
          Alcotest.test_case "permits" `Quick test_pks_permits;
          Alcotest.test_case "set key" `Quick test_pks_set_key;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "map/walk" `Quick test_pt_map_walk;
          Alcotest.test_case "unmap" `Quick test_pt_unmap;
          Alcotest.test_case "update" `Quick test_pt_update;
          Alcotest.test_case "distinct vaddrs" `Quick test_pt_distinct_vaddrs;
          qt prop_pt_model;
        ] );
      ( "access",
        [
          Alcotest.test_case "user mode" `Quick test_access_user_mode;
          Alcotest.test_case "smep/smap" `Quick test_access_smep_smap;
          Alcotest.test_case "wp" `Quick test_access_wp;
          Alcotest.test_case "pks" `Quick test_access_pks;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "translate rw" `Quick test_cpu_translate_rw;
          Alcotest.test_case "dirty/accessed" `Quick test_cpu_dirty_accessed;
          Alcotest.test_case "user/kernel separation" `Quick test_cpu_user_kernel;
          Alcotest.test_case "privileged from user" `Quick test_cpu_privileged_from_user;
          Alcotest.test_case "pks enforcement" `Quick test_cpu_pks_enforcement;
          Alcotest.test_case "tlb behaviour" `Quick test_cpu_tlb_behaviour;
          Alcotest.test_case "tlb staleness semantics" `Quick test_cpu_tlb_staleness_semantics;
          Alcotest.test_case "hot path allocation-free" `Quick test_cpu_hot_path_no_alloc;
          Alcotest.test_case "scrub regs" `Quick test_cpu_scrub_regs;
        ] );
      ( "cet",
        [
          Alcotest.test_case "ibt" `Quick test_cet_ibt;
          Alcotest.test_case "shadow stack" `Quick test_cet_shadow_stack;
          Alcotest.test_case "token exclusivity" `Quick test_cet_token_exclusivity;
        ] );
      ( "isa",
        [
          Alcotest.test_case "roundtrip" `Quick test_isa_roundtrip;
          Alcotest.test_case "scan clean" `Quick test_isa_scan_clean;
          Alcotest.test_case "scan sensitive" `Quick test_isa_scan_catches_sensitive;
          Alcotest.test_case "scan unaligned" `Quick test_isa_scan_unaligned;
          Alcotest.test_case "imm range" `Quick test_isa_imm_range;
          Alcotest.test_case "roundtrip every opcode" `Quick
            test_isa_roundtrip_every_opcode;
          Alcotest.test_case "decode rejects" `Quick test_isa_decode_rejects;
          qt prop_isa_benign_scan_clean;
        ] );
      ( "icode",
        [
          Alcotest.test_case "decode matches isa" `Quick
            test_icode_decode_matches_isa;
          Alcotest.test_case "decode rejects" `Quick test_icode_decode_rejects;
          Alcotest.test_case "run equivalence" `Quick test_icode_run_equivalence;
          Alcotest.test_case "cache shares programs" `Quick
            test_icode_cache_shares;
          Alcotest.test_case "steady state allocation-free" `Quick
            test_icode_steady_state_no_alloc;
          Alcotest.test_case "fuel bounds runaway" `Quick
            test_icode_fuel_bounds_runaway;
        ] );
      ( "image",
        [
          Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "rejects" `Quick test_image_rejects;
          qt prop_image_roundtrip;
          qt prop_image_fuzz;
        ] );
      ( "misc",
        [
          Alcotest.test_case "apic" `Quick test_apic_fires;
          Alcotest.test_case "uintr" `Quick test_uintr_gating;
          Alcotest.test_case "idt" `Quick test_idt_dispatch;
          Alcotest.test_case "cycles" `Quick test_cycles_clock;
        ] );
    ]
