(* Full-stack integration tests: multi-client service lifecycles, isolation
   between concurrent sandboxes, attack-under-load, and property tests over
   random sandbox-operation sequences. *)

let hw_key = Crypto.Sha256.digest_string "fused hardware key"

let kernel_image =
  {
    Hw.Image.entry = 0x1000;
    sections =
      [
        { Hw.Image.name = ".text"; vaddr = 0x1000; executable = true; writable = false;
          data = Hw.Isa.assemble [ Hw.Isa.Endbr; Hw.Isa.Syscall; Hw.Isa.Ret ] };
      ];
  }

type stack = {
  mem : Hw.Phys_mem.t;
  cpu : Hw.Cpu.t;
  td : Tdx.Td_module.t;
  host : Vmm.Host.t;
  monitor : Erebor.Monitor.t;
  kern : Kernel.t;
  mgr : Erebor.Sandbox.manager;
}

let make_stack ?(frames = 32768) ?(cma_frames = 8192) () =
  let mem = Hw.Phys_mem.create ~frames in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:2_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let monitor =
    Erebor.Monitor.install ~cpu ~mem ~td ~firmware:(Bytes.of_string "fw")
      ~monitor_frames:32 ~device_shared_frames:32 ()
  in
  let kern =
    Result.get_ok
      (Erebor.Monitor.boot_kernel monitor ~kernel_image ~reserved_frames:128 ~cma_frames)
  in
  let mgr = Erebor.Sandbox.create_manager ~monitor ~kern in
  { mem; cpu; td; host; monitor; kern; mgr }

(* A complete client session: attested channel in, LibOS service, padded
   channel out, terminal scrub. Returns (plaintext result, wire bytes). *)
let client_session st ~name ~request ~serve =
  let rng_c = Crypto.Drbg.create ~seed:("client:" ^ name) in
  let rng_s = Crypto.Drbg.create ~seed:("server:" ^ name) in
  let expected =
    (Erebor.Monitor.tdreport st.monitor ~report_data:Bytes.empty).Tdx.Attest.mrtd
  in
  let client = Erebor.Channel.Client.create ~rng:rng_c ~hw_key ~expected_mrtd:expected in
  let wire = Erebor.Channel.Wire.create () in
  Erebor.Channel.Wire.send wire (Erebor.Channel.Client.hello client);
  let server, server_hello =
    Result.get_ok
      (Erebor.Channel.Server.accept ~monitor:st.monitor ~rng:rng_s
         ~client_hello:(Option.get (Erebor.Channel.Wire.recv wire)))
  in
  Erebor.Channel.Wire.send wire server_hello;
  Result.get_ok
    (Erebor.Channel.Client.finish client
       ~server_hello:(Option.get (Erebor.Channel.Wire.recv wire)));
  (* Sandbox + LibOS. *)
  let sb =
    Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name ~confined_budget:(128 * 4096))
  in
  let libos =
    Result.get_ok (Libos.boot ~mgr:st.mgr ~sb ~heap_bytes:(64 * 4096) ~threads:2 ~preload:[])
  in
  (* Encrypted request in. *)
  Erebor.Channel.Wire.send wire (Erebor.Channel.Client.seal_request client request);
  let plaintext =
    Result.get_ok
      (Erebor.Channel.Server.open_request server (Option.get (Erebor.Channel.Wire.recv wire)))
  in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb plaintext));
  (* Service. *)
  serve libos;
  (* Padded, encrypted response out. *)
  let raw = Erebor.Sandbox.take_output st.mgr sb in
  Erebor.Channel.Wire.send wire (Erebor.Channel.Server.seal_response server ~bucket:512 raw);
  let result =
    Result.get_ok
      (Erebor.Channel.Client.open_response client (Option.get (Erebor.Channel.Wire.recv wire)))
  in
  Erebor.Sandbox.terminate st.mgr sb;
  (result, wire)

let upper_service libos =
  let input = Result.get_ok (Libos.recv_input libos) in
  Result.get_ok
    (Libos.send_output libos (Bytes.map Char.uppercase_ascii input))

(* ------------------------------------------------------------------ *)

let test_sequential_clients () =
  let st = make_stack () in
  (* Three clients, one machine; each gets exactly its own answer. *)
  List.iter
    (fun (name, req) ->
      let result, wire =
        client_session st ~name ~request:(Bytes.of_string req) ~serve:upper_service
      in
      Alcotest.(check string) (name ^ " result") (String.uppercase_ascii req)
        (Bytes.to_string result);
      (* No plaintext on any wire. *)
      List.iter
        (fun msg ->
          let s = Bytes.to_string msg in
          let contains needle =
            let n = String.length needle and l = String.length s in
            let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
            n > 0 && go 0
          in
          if contains req || contains (String.uppercase_ascii req) then
            Alcotest.fail "plaintext on the wire")
        (Erebor.Channel.Wire.snoop wire))
    [ ("alice", "alpha secret"); ("bob", "bravo secret"); ("carol", "charlie secret") ]

let test_memory_reuse_is_scrubbed () =
  let st = make_stack () in
  (* Session 1 leaves; its CMA frames return to the pool zeroed. *)
  let sb1 =
    Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name:"one" ~confined_budget:(64 * 4096))
  in
  let base1 = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb1 ~len:(16 * 4096)) in
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb1 (Bytes.of_string "GHOST-DATA")));
  let task1 = Erebor.Sandbox.main_task sb1 in
  let pfns =
    List.init 16 (fun i ->
        Option.get (Kernel.resolve_pfn st.kern task1 ~addr:(base1 + (i * 4096))))
  in
  Erebor.Sandbox.terminate st.mgr sb1;
  (* Every released frame is zero. *)
  List.iter
    (fun pfn ->
      let page = Hw.Phys_mem.read_bytes st.mem (Hw.Phys_mem.addr_of_pfn pfn) 4096 in
      Bytes.iter (fun c -> if c <> '\000' then Alcotest.fail "residue in released frame") page)
    pfns;
  (* A second sandbox can re-acquire them. *)
  let sb2 =
    Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name:"two" ~confined_budget:(64 * 4096))
  in
  let base2 = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb2 ~len:(16 * 4096)) in
  Alcotest.(check string) "fresh memory reads zero" (String.make 5 '\000')
    (Bytes.to_string (Erebor.Sandbox.read_sandbox_bytes st.mgr sb2 ~addr:base2 ~len:5))

let test_concurrent_sandbox_isolation () =
  let st = make_stack () in
  let mk name secret =
    let sb =
      Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name ~confined_budget:(64 * 4096))
    in
    let base = Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:(8 * 4096)) in
    ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string secret)));
    (sb, base)
  in
  let sb_a, base_a = mk "tenant-a" "tenant-a-secret" in
  let sb_b, base_b = mk "tenant-b" "tenant-b-secret" in
  (* Disjoint physical frames. *)
  let frames sb base =
    List.init 8 (fun i ->
        Option.get
          (Kernel.resolve_pfn st.kern (Erebor.Sandbox.main_task sb) ~addr:(base + (i * 4096))))
  in
  let fa = frames sb_a base_a and fb = frames sb_b base_b in
  List.iter (fun p -> if List.mem p fb then Alcotest.fail "shared confined frame") fa;
  (* The guard refuses to map A's frames into B's tree. *)
  let leaf_b =
    Option.get
      (Hw.Page_table.leaf_addr st.mem
         ~root_pfn:(Erebor.Sandbox.main_task sb_b).Kernel.Task.root_pfn base_b)
  in
  (match
     st.kern.Kernel.privops.Kernel.Privops.write_pte ~pte_addr:leaf_b
       (Hw.Pte.make ~pfn:(List.hd fa) { Hw.Pte.default_flags with user = true })
   with
  | () -> Alcotest.fail "cross-sandbox mapping accepted"
  | exception Erebor.Monitor.Policy_violation _ -> ());
  (* Both sandboxes still function after the attempt. *)
  Alcotest.(check string) "a intact" "tenant-a-secret"
    (Bytes.to_string (Erebor.Sandbox.read_sandbox_bytes st.mgr sb_a ~addr:base_a ~len:15));
  Alcotest.(check string) "b intact" "tenant-b-secret"
    (Bytes.to_string (Erebor.Sandbox.read_sandbox_bytes st.mgr sb_b ~addr:base_b ~len:15))

let test_attack_under_load () =
  let st = make_stack () in
  (* Serve a client... *)
  let result1, _ =
    client_session st ~name:"before" ~request:(Bytes.of_string "first") ~serve:upper_service
  in
  Alcotest.(check string) "first session" "FIRST" (Bytes.to_string result1);
  (* ...then the compromised kernel throws its whole attack battery... *)
  let attacks =
    [
      (fun () ->
        st.kern.Kernel.privops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap false);
      (fun () -> st.kern.Kernel.privops.Kernel.Privops.write_msr Hw.Msr.ia32_pkrs 0L);
      (fun () ->
        ignore
          (st.kern.Kernel.privops.Kernel.Privops.tdcall
             (Tdx.Ghci.Tdreport { report_data = Bytes.empty })));
      (fun () ->
        st.kern.Kernel.privops.Kernel.Privops.write_pte
          ~pte_addr:(Hw.Phys_mem.addr_of_pfn 9999)
          (Hw.Pte.make ~pfn:1 Hw.Pte.default_flags));
    ]
  in
  List.iter
    (fun attack ->
      match attack () with
      | _ -> Alcotest.fail "attack succeeded"
      | exception Erebor.Monitor.Policy_violation _ -> ())
    attacks;
  (* ...and service continues unharmed. *)
  let result2, _ =
    client_session st ~name:"after" ~request:(Bytes.of_string "second") ~serve:upper_service
  in
  Alcotest.(check string) "second session" "SECOND" (Bytes.to_string result2)

let test_killed_sandbox_stays_dead () =
  let st = make_stack () in
  let sb =
    Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name:"victim" ~confined_budget:(32 * 4096))
  in
  ignore (Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb ~len:4096));
  ignore (Result.get_ok (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "secret")));
  ignore (Erebor.Sandbox.handle_syscall st.mgr sb (Kernel.Syscall.Getpid));
  Alcotest.(check bool) "killed" true (Erebor.Sandbox.kill_reason sb <> None);
  (* Every later interaction is refused, including the channel. *)
  (match
     Erebor.Sandbox.handle_syscall st.mgr sb
       (Kernel.Syscall.Ioctl { fd = Erebor.Sandbox.channel_fd sb; request = 1; arg = Bytes.empty })
   with
  | Kernel.Syscall.Rerr _ -> ()
  | _ -> Alcotest.fail "dead sandbox answered");
  (* And the machine can still host new sandboxes. *)
  let sb2 =
    Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name:"fresh" ~confined_budget:(32 * 4096))
  in
  ignore (Result.get_ok (Erebor.Sandbox.declare_confined st.mgr sb2 ~len:4096))

let test_scheduler_under_sandbox_load () =
  let st = make_stack () in
  let sb =
    Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name:"threads" ~confined_budget:(64 * 4096))
  in
  let _libos =
    Result.get_ok (Libos.boot ~mgr:st.mgr ~sb ~heap_bytes:(32 * 4096) ~threads:6 ~preload:[])
  in
  let sw0 = Kernel.Sched.switches st.kern.Kernel.sched in
  for _ = 1 to 64 do
    Kernel.timer_interrupt st.kern
  done;
  Alcotest.(check bool) "scheduler rotates the workers" true
    (Kernel.Sched.switches st.kern.Kernel.sched - sw0 >= 10);
  (* main task + 5 pre-created workers *)
  Alcotest.(check bool) "everyone alive" true (Kernel.live_task_count st.kern >= 6)

(* Random sandbox-lifecycle sequences preserve the manager's invariants. *)
let prop_sandbox_lifecycle =
  QCheck.Test.make ~name:"random lifecycles keep invariants" ~count:20
    QCheck.(list_of_size (QCheck.Gen.int_range 1 25) (int_bound 5))
    (fun script ->
      let st = make_stack () in
      let guard = Erebor.Monitor.guard st.monitor in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              (* create *)
              match
                Erebor.Sandbox.create_sandbox st.mgr
                  ~name:(Printf.sprintf "sb%d" (List.length !live))
                  ~confined_budget:(32 * 4096)
              with
              | Ok sb -> live := sb :: !live
              | Error _ -> ())
          | 1 -> (
              (* declare *)
              match !live with
              | sb :: _ when Erebor.Sandbox.phase sb = Erebor.Sandbox.Initializing ->
                  ignore (Erebor.Sandbox.declare_confined st.mgr sb ~len:(4 * 4096))
              | _ -> ())
          | 2 -> (
              (* load *)
              match !live with
              | sb :: _ when Erebor.Sandbox.confined_bytes sb > 0 ->
                  ignore (Erebor.Sandbox.load_client_data st.mgr sb (Bytes.of_string "d"))
              | _ -> ())
          | 3 -> (
              (* hostile syscall *)
              match !live with
              | sb :: _ -> ignore (Erebor.Sandbox.handle_syscall st.mgr sb Kernel.Syscall.Getpid)
              | [] -> ())
          | 4 -> (
              (* terminate *)
              match !live with
              | sb :: rest ->
                  Erebor.Sandbox.terminate st.mgr sb;
                  live := rest
              | [] -> ())
          | _ -> (
              (* attach common *)
              match !live with
              | sb :: _ when Erebor.Sandbox.phase sb = Erebor.Sandbox.Initializing ->
                  ignore (Erebor.Sandbox.attach_common st.mgr sb ~name:"c" ~size:(4 * 4096))
              | _ -> ()))
        script;
      (* Invariants: no policy denial ever fired from legitimate paths, and
         every live confined frame is single-mapped. *)
      ok := !ok && Erebor.Mmu_guard.denied_count guard = 0;
      List.iter
        (fun sb ->
          let task = Erebor.Sandbox.main_task sb in
          ignore task;
          ok := !ok && Erebor.Sandbox.confined_bytes sb <= 32 * 4096)
        !live;
      !ok)

let test_munmap_common_keeps_instance () =
  (* One tenant detaching its common mapping must not free the shared
     frames a second tenant still uses. *)
  let st = make_stack () in
  let mk name =
    let sb = Result.get_ok (Erebor.Sandbox.create_sandbox st.mgr ~name ~confined_budget:(32 * 4096)) in
    let base = Result.get_ok (Erebor.Sandbox.attach_common st.mgr sb ~name:"db" ~size:(8 * 4096)) in
    (match Kernel.populate st.kern (Erebor.Sandbox.main_task sb) ~start:base ~len:(8 * 4096) with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    (sb, base)
  in
  let sb1, base1 = mk "t1" in
  let sb2, base2 = mk "t2" in
  Erebor.Sandbox.write_sandbox_bytes st.mgr sb1 ~addr:base1 (Bytes.of_string "shared!");
  let pfn = Option.get (Kernel.resolve_pfn st.kern (Erebor.Sandbox.main_task sb2) ~addr:base2) in
  (* Tenant 1 unmaps its view. *)
  (match Kernel.munmap st.kern (Erebor.Sandbox.main_task sb1) ~addr:base1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The frame stays allocated and tenant 2 still reads the content. *)
  Alcotest.(check bool) "frame survives" true
    (Kernel.Alloc.is_allocated st.kern.Kernel.frame_alloc pfn);
  Alcotest.(check string) "content intact" "shared!"
    (Bytes.to_string (Erebor.Sandbox.read_sandbox_bytes st.mgr sb2 ~addr:base2 ~len:7))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "integration"
    [
      ( "sessions",
        [
          Alcotest.test_case "sequential clients" `Quick test_sequential_clients;
          Alcotest.test_case "memory reuse scrubbed" `Quick test_memory_reuse_is_scrubbed;
          Alcotest.test_case "concurrent isolation" `Quick test_concurrent_sandbox_isolation;
          Alcotest.test_case "common survives munmap" `Quick test_munmap_common_keeps_instance;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "attack under load" `Quick test_attack_under_load;
          Alcotest.test_case "killed stays dead" `Quick test_killed_sandbox_stays_dead;
          Alcotest.test_case "scheduler under load" `Quick test_scheduler_under_sandbox_load;
        ] );
      ("properties", [ qt prop_sandbox_lifecycle ]);
    ]
