(* Tests for the evaluation machine: cross-setting invariants, emergent
   cost ordering, statistics sanity. *)

let small_spec ?(sandboxed = true) ?(body = fun _ -> ()) ?(common = None) () =
  {
    Sim.Machine.name = "test";
    sandboxed;
    timer_hz = 1000;
    init_compute = 0;
    confined_bytes = 32 * 4096;
    nominal_confined_mb = 1;
    common;
    threads = 2;
    contention = 0.2;
    input = Bytes.of_string "test input data";
    output_bucket = 256;
    body;
  }

let echo_body (ops : Sim.Machine.ops) =
  let input = ops.Sim.Machine.recv_input () in
  ops.Sim.Machine.send_output (Bytes.cat (Bytes.of_string "echo:") input)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Sim.Config.of_name (Sim.Config.name s) = Some s))
    Sim.Config.all;
  Alcotest.(check bool) "unknown" true (Sim.Config.of_name "banana" = None);
  Alcotest.(check bool) "native has no monitor" false (Sim.Config.has_monitor Sim.Config.Native);
  Alcotest.(check bool) "full has everything" true
    (Sim.Config.emc_privops Sim.Config.Erebor_full
    && Sim.Config.interposes_exits Sim.Config.Erebor_full
    && Sim.Config.uses_libos Sim.Config.Erebor_full);
  Alcotest.(check bool) "ablation split" true
    (Sim.Config.emc_privops Sim.Config.Erebor_mmu
    && (not (Sim.Config.interposes_exits Sim.Config.Erebor_mmu))
    && (not (Sim.Config.emc_privops Sim.Config.Erebor_exit))
    && Sim.Config.interposes_exits Sim.Config.Erebor_exit)

(* ------------------------------------------------------------------ *)
(* Machine basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_output_identical_across_settings () =
  (* The computation's result must not depend on the protection setting. *)
  let outputs =
    List.map
      (fun setting ->
        let r =
          Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting
            (small_spec ~body:echo_body ())
        in
        Bytes.to_string r.Sim.Machine.output)
      Sim.Config.all
  in
  List.iter
    (fun o -> Alcotest.(check string) "same output" "echo:test input data" o)
    outputs

let test_native_has_no_emc () =
  let r =
    Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting:Sim.Config.Native
      (small_spec ~body:echo_body ())
  in
  Alcotest.(check int) "no EMCs natively" 0 r.Sim.Machine.stats.Sim.Stats.emc_total

let test_full_pads_output () =
  let r =
    Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting:Sim.Config.Erebor_full
      (small_spec ~body:echo_body ())
  in
  Alcotest.(check bool) "wire length >= bucket" true (r.Sim.Machine.wire_output_len >= 256);
  Alcotest.(check bool) "not killed" true (r.Sim.Machine.killed = None)

let test_benign_body_never_killed () =
  List.iter
    (fun setting ->
      let r =
        Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting
          (small_spec
             ~body:(fun ops ->
               ops.Sim.Machine.compute 10_000_000;
               ops.Sim.Machine.cold_fault ();
               ops.Sim.Machine.host_io ~bytes:4096;
               ops.Sim.Machine.service ();
               ops.Sim.Machine.cpuid ();
               ops.Sim.Machine.sync_op ~contended:false;
               ops.Sim.Machine.pte_churn ~n:3;
               echo_body ops)
             ())
      in
      Alcotest.(check bool)
        (Sim.Config.name setting ^ " survives")
        true (r.Sim.Machine.killed = None))
    Sim.Config.all

let test_overhead_ordering () =
  (* Full Erebor must cost more than native; ablations in between. *)
  let spec () =
    small_spec
      ~body:(fun ops ->
        for _ = 1 to 50 do
          ops.Sim.Machine.cold_fault ();
          ops.Sim.Machine.host_io ~bytes:8192;
          ops.Sim.Machine.pte_churn ~n:10;
          ops.Sim.Machine.compute 1_000_000
        done)
      ()
  in
  let cycles setting =
    (Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting (spec ())).Sim.Machine.run_cycles
  in
  let native = cycles Sim.Config.Native in
  let mmu = cycles Sim.Config.Erebor_mmu in
  let exit = cycles Sim.Config.Erebor_exit in
  let full = cycles Sim.Config.Erebor_full in
  Alcotest.(check bool) "native < exit" true (native < exit);
  Alcotest.(check bool) "native < mmu" true (native < mmu);
  Alcotest.(check bool) "mmu < full" true (mmu < full);
  Alcotest.(check bool) "exit < full" true (exit < full)

let test_timer_rate_emerges () =
  let spec =
    { (small_spec ~body:(fun ops -> ops.Sim.Machine.compute 2_100_000_000) ()) with
      Sim.Machine.timer_hz = 500 }
  in
  let r = Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting:Sim.Config.Native spec in
  let rate = Sim.Stats.timer_rate r.Sim.Machine.stats in
  Alcotest.(check bool) "about 500 Hz" true (rate > 450.0 && rate < 550.0)

let test_cold_fault_sustains_pf () =
  let spec =
    small_spec
      ~body:(fun ops ->
        for _ = 1 to 200 do
          ops.Sim.Machine.cold_fault ()
        done)
      ()
  in
  let r = Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting:Sim.Config.Native spec in
  (* 200 faults even though the region only has 32 pages: eviction works. *)
  Alcotest.(check bool) "sustained faults" true
    (r.Sim.Machine.stats.Sim.Stats.page_faults >= 200)

let test_init_overhead_positive_under_emc () =
  let native =
    Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting:Sim.Config.Native
      (small_spec ())
  in
  let full =
    Sim.Machine.run_fresh ~frames:32768 ~cma_frames:4096 ~setting:Sim.Config.Erebor_full
      (small_spec ())
  in
  Alcotest.(check bool) "confined pinning costs more under Erebor" true
    (full.Sim.Machine.init_cycles > native.Sim.Machine.init_cycles)

let test_common_shared_across_runs () =
  (* Two sessions against the same machine share the common instance. *)
  let m = Sim.Machine.create ~frames:65536 ~cma_frames:8192 ~setting:Sim.Config.Erebor_exit () in
  let spec =
    small_spec ~common:(Some ("shared-db", 64 * 4096, 1))
      ~body:(fun ops ->
        for page = 0 to 63 do
          ops.Sim.Machine.touch_common ~page
        done)
      ()
  in
  let r1 = Sim.Machine.run m spec in
  let r2 = Sim.Machine.run m spec in
  Alcotest.(check int) "instance fully materialized" 64 r1.Sim.Machine.common_frames;
  Alcotest.(check int) "second run reuses the same frames" 64 r2.Sim.Machine.common_frames

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_diff () =
  let a = { Sim.Stats.zero with Sim.Stats.cycles = 100; page_faults = 5; seconds = 1.0 } in
  let b = { Sim.Stats.zero with Sim.Stats.cycles = 300; page_faults = 9; seconds = 3.0 } in
  let d = Sim.Stats.diff ~before:a ~after:b in
  Alcotest.(check int) "cycles" 200 d.Sim.Stats.cycles;
  Alcotest.(check int) "pf" 4 d.Sim.Stats.page_faults;
  Alcotest.(check (float 0.01)) "pf rate" 2.0 (Sim.Stats.pf_rate d);
  Alcotest.(check (float 0.01)) "zero-span rate" 0.0 (Sim.Stats.pf_rate Sim.Stats.zero)

(* ------------------------------------------------------------------ *)
(* Runner: domain-pool fan-out                                         *)
(* ------------------------------------------------------------------ *)

let test_runner_map_order () =
  let input = Array.init 50 Fun.id in
  let seq = Sim.Runner.map ~jobs:1 (fun i -> i * i) input in
  let par = Sim.Runner.map ~jobs:4 (fun i -> i * i) input in
  Alcotest.(check (array int)) "results land at input index" seq par;
  Alcotest.(check (list int)) "map_list" [ 1; 4; 9 ]
    (Sim.Runner.map_list ~jobs:3 (fun i -> i * i) [ 1; 2; 3 ]);
  Alcotest.(check (array int)) "empty input" [||] (Sim.Runner.map ~jobs:4 Fun.id [||])

let test_runner_error_propagates () =
  match
    Sim.Runner.map ~jobs:4
      (fun i -> if i = 7 then failwith "boom" else i)
      (Array.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Sim.Runner.Task_error (Failure msg) ->
      Alcotest.(check string) "original exception carried" "boom" msg

(* ------------------------------------------------------------------ *)
(* Determinism: parallel evaluation == sequential                      *)
(* ------------------------------------------------------------------ *)

(* The --jobs fan-out must be invisible in the results: every machine owns
   its state, so stats, outputs and the golden event trace are identical
   whether the settings run on one domain or eight. *)
let test_parallel_matches_sequential () =
  let run setting =
    let obs = Obs.Emitter.create () in
    let rec_ = Obs.Chrome.attach obs (Obs.Chrome.create ()) in
    let m = Sim.Machine.create ~obs ~frames:32768 ~cma_frames:4096 ~setting () in
    let r = Sim.Machine.run m (small_spec ~body:echo_body ()) in
    (r.Sim.Machine.stats, Bytes.to_string r.Sim.Machine.output, Obs.Chrome.to_chrome_json rec_)
  in
  let settings = Array.of_list Sim.Config.all in
  let seq = Array.map run settings in
  let par = Sim.Runner.map ~jobs:8 run settings in
  Array.iteri
    (fun i setting ->
      let name = Sim.Config.name setting in
      let s_stats, s_out, s_trace = seq.(i) in
      let p_stats, p_out, p_trace = par.(i) in
      Alcotest.(check bool) (name ^ ": stats identical") true (s_stats = p_stats);
      Alcotest.(check string) (name ^ ": output identical") s_out p_out;
      Alcotest.(check bool) (name ^ ": golden trace identical") true
        (String.equal s_trace p_trace))
    settings

let test_memshare_parallel_rows () =
  let seq = Workloads.Eval.memshare ~jobs:1 ~max_sandboxes:3 () in
  let par = Workloads.Eval.memshare ~jobs:4 ~max_sandboxes:3 () in
  Alcotest.(check int) "row count" (List.length seq) (List.length par);
  List.iter2
    (fun (s : Workloads.Eval.memshare_row) (p : Workloads.Eval.memshare_row) ->
      Alcotest.(check int) "sandboxes" s.Workloads.Eval.sandboxes p.Workloads.Eval.sandboxes;
      Alcotest.(check int) "shared" s.Workloads.Eval.shared_frames p.Workloads.Eval.shared_frames;
      Alcotest.(check int) "replicated" s.Workloads.Eval.replicated_frames
        p.Workloads.Eval.replicated_frames)
    seq par

let () =
  Alcotest.run "sim"
    [
      ("config", [ Alcotest.test_case "names/predicates" `Quick test_config_names ]);
      ( "machine",
        [
          Alcotest.test_case "output setting-independent" `Slow test_output_identical_across_settings;
          Alcotest.test_case "native emc-free" `Quick test_native_has_no_emc;
          Alcotest.test_case "full pads output" `Quick test_full_pads_output;
          Alcotest.test_case "benign survives" `Slow test_benign_body_never_killed;
          Alcotest.test_case "overhead ordering" `Slow test_overhead_ordering;
          Alcotest.test_case "timer rate" `Quick test_timer_rate_emerges;
          Alcotest.test_case "cold faults sustain" `Quick test_cold_fault_sustains_pf;
          Alcotest.test_case "init overhead" `Quick test_init_overhead_positive_under_emc;
          Alcotest.test_case "common shared" `Quick test_common_shared_across_runs;
        ] );
      ("stats", [ Alcotest.test_case "diff/rates" `Quick test_stats_diff ]);
      ( "runner",
        [
          Alcotest.test_case "map preserves order" `Quick test_runner_map_order;
          Alcotest.test_case "errors propagate" `Quick test_runner_error_propagates;
          Alcotest.test_case "parallel == sequential" `Slow test_parallel_matches_sequential;
          Alcotest.test_case "memshare rows jobs-independent" `Slow test_memshare_parallel_rows;
        ] );
    ]
