(* Tests for the simulated TDX module and the host VMM. *)

let make_td () =
  let mem = Hw.Phys_mem.create ~frames:256 in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:1_000_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key:(Crypto.Sha256.digest_string "hwkey") in
  (mem, clock, cpu, td)

(* ------------------------------------------------------------------ *)
(* Sept                                                                *)
(* ------------------------------------------------------------------ *)

let test_sept_default_private () =
  let sept = Tdx.Sept.create ~frames:8 in
  for pfn = 0 to 7 do
    Alcotest.(check bool) "private" false (Tdx.Sept.is_shared sept pfn)
  done;
  Alcotest.(check int) "none shared" 0 (Tdx.Sept.shared_count sept)

let test_sept_convert () =
  let sept = Tdx.Sept.create ~frames:8 in
  Tdx.Sept.convert sept 3 Tdx.Sept.Shared;
  Tdx.Sept.convert sept 5 Tdx.Sept.Shared;
  Alcotest.(check bool) "3 shared" true (Tdx.Sept.is_shared sept 3);
  Alcotest.(check (list int)) "shared list" [ 3; 5 ] (Tdx.Sept.shared_pfns sept);
  Tdx.Sept.convert sept 3 Tdx.Sept.Private;
  Alcotest.(check (list int)) "after revert" [ 5 ] (Tdx.Sept.shared_pfns sept);
  Alcotest.check_raises "oob" (Invalid_argument "Sept: pfn out of range") (fun () ->
      ignore (Tdx.Sept.state sept 8))

(* ------------------------------------------------------------------ *)
(* Attestation                                                         *)
(* ------------------------------------------------------------------ *)

let test_attest_measurement_chain () =
  let a = Tdx.Attest.create_measurements () in
  let b = Tdx.Attest.create_measurements () in
  Tdx.Attest.extend_mrtd a (Bytes.of_string "firmware");
  Tdx.Attest.extend_mrtd a (Bytes.of_string "monitor");
  Tdx.Attest.extend_mrtd b (Bytes.of_string "firmware");
  Tdx.Attest.extend_mrtd b (Bytes.of_string "monitor");
  Alcotest.(check bytes) "deterministic chain" (Tdx.Attest.mrtd a) (Tdx.Attest.mrtd b);
  Tdx.Attest.extend_mrtd b (Bytes.of_string "evil");
  Alcotest.(check bool) "extension changes mrtd" false
    (Bytes.equal (Tdx.Attest.mrtd a) (Tdx.Attest.mrtd b));
  (* Order matters. *)
  let c = Tdx.Attest.create_measurements () in
  Tdx.Attest.extend_mrtd c (Bytes.of_string "monitor");
  Tdx.Attest.extend_mrtd c (Bytes.of_string "firmware");
  Alcotest.(check bool) "order-sensitive" false
    (Bytes.equal (Tdx.Attest.mrtd a) (Tdx.Attest.mrtd c))

let test_attest_report_verify () =
  let m = Tdx.Attest.create_measurements () in
  Tdx.Attest.extend_mrtd m (Bytes.of_string "boot");
  let hw_key = Crypto.Sha256.digest_string "fused key" in
  let report = Tdx.Attest.generate m ~hw_key ~report_data:(Bytes.of_string "client nonce") in
  Alcotest.(check bool) "verifies" true (Tdx.Attest.verify ~hw_key report);
  Alcotest.(check int) "report_data padded" 64 (Bytes.length report.Tdx.Attest.report_data);
  (* Forgery attempts. *)
  let forged = { report with Tdx.Attest.mrtd = Crypto.Sha256.digest_string "other" } in
  Alcotest.(check bool) "forged mrtd rejected" false (Tdx.Attest.verify ~hw_key forged);
  let wrong_key = Crypto.Sha256.digest_string "guess" in
  Alcotest.(check bool) "wrong key rejected" false (Tdx.Attest.verify ~hw_key:wrong_key report);
  Alcotest.check_raises "oversized report_data"
    (Invalid_argument "Attest: report_data exceeds 64 bytes") (fun () ->
      ignore (Tdx.Attest.generate m ~hw_key ~report_data:(Bytes.make 65 'x')))

let test_attest_rtmr () =
  let m = Tdx.Attest.create_measurements () in
  Tdx.Attest.extend_rtmr m ~index:2 (Bytes.of_string "event");
  Alcotest.(check bool) "rtmr2 changed" false
    (Bytes.equal (Tdx.Attest.rtmr m ~index:2) (Bytes.make 32 '\000'));
  Alcotest.(check bytes) "rtmr0 untouched" (Bytes.make 32 '\000') (Tdx.Attest.rtmr m ~index:0);
  Alcotest.check_raises "bad index" (Invalid_argument "Attest: bad RTMR index") (fun () ->
      Tdx.Attest.extend_rtmr m ~index:4 Bytes.empty)

(* ------------------------------------------------------------------ *)
(* Quoting layer                                                       *)
(* ------------------------------------------------------------------ *)

let hwk = Crypto.Sha256.digest_string "hwkey"

let make_report () =
  let m = Tdx.Attest.create_measurements () in
  Tdx.Attest.extend_mrtd m (Bytes.of_string "monitor");
  Tdx.Attest.generate m ~hw_key:hwk ~report_data:(Bytes.of_string "nonce")

let test_quote_roundtrip () =
  let rng = Crypto.Drbg.create ~seed:"qe" in
  let qe = Tdx.Quote.create_service rng ~hw_key:hwk in
  let report = make_report () in
  let q = Result.get_ok (Tdx.Quote.quote qe report) in
  Alcotest.(check bool) "verifies with pinned key" true
    (Tdx.Quote.verify (Tdx.Quote.attestation_key qe) q);
  (* Wire roundtrip. *)
  (match Tdx.Quote.deserialize (Tdx.Quote.serialize q) with
  | Ok q' ->
      Alcotest.(check bool) "survives serialization" true
        (Tdx.Quote.verify (Tdx.Quote.attestation_key qe) q')
  | Error e -> Alcotest.fail e);
  (match Tdx.Quote.deserialize (Bytes.of_string "junk") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk deserialized")

let test_quote_rejects_forged_report () =
  let rng = Crypto.Drbg.create ~seed:"qe2" in
  let qe = Tdx.Quote.create_service rng ~hw_key:hwk in
  (* A report MACed under a guessed key never gets quoted. *)
  let m = Tdx.Attest.create_measurements () in
  let forged =
    Tdx.Attest.generate m ~hw_key:(Crypto.Sha256.digest_string "guess") ~report_data:Bytes.empty
  in
  match Tdx.Quote.quote qe forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged report quoted"

let test_quote_rejects_tampered_body () =
  let rng = Crypto.Drbg.create ~seed:"qe3" in
  let qe = Tdx.Quote.create_service rng ~hw_key:hwk in
  let q = Result.get_ok (Tdx.Quote.quote qe (make_report ())) in
  let tampered =
    { q with Tdx.Quote.body = { q.Tdx.Quote.body with Tdx.Attest.mrtd = Bytes.make 32 'X' } }
  in
  Alcotest.(check bool) "tampered body rejected" false
    (Tdx.Quote.verify (Tdx.Quote.attestation_key qe) tampered);
  (* A different QE's key does not verify this quote. *)
  let other = Tdx.Quote.create_service (Crypto.Drbg.create ~seed:"other") ~hw_key:hwk in
  Alcotest.(check bool) "wrong collateral rejected" false
    (Tdx.Quote.verify (Tdx.Quote.attestation_key other) q)

(* ------------------------------------------------------------------ *)
(* Td_module                                                           *)
(* ------------------------------------------------------------------ *)

let test_tdcall_privileged () =
  let _, _, cpu, td = make_td () in
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  match Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Tdreport { report_data = Bytes.empty }) with
  | _ -> Alcotest.fail "tdcall from user mode succeeded"
  | exception Hw.Fault.Fault (Hw.Fault.General_protection _) -> ()

let test_tdcall_report_cost () =
  let _, clock, cpu, td = make_td () in
  let t0 = Hw.Cycles.now clock in
  (match Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Tdreport { report_data = Bytes.empty }) with
  | Tdx.Td_module.Ok_report r ->
      Alcotest.(check bool) "report verifies" true
        (Tdx.Attest.verify ~hw_key:(Crypto.Sha256.digest_string "hwkey") r)
  | _ -> Alcotest.fail "expected report");
  Alcotest.(check int) "tdreport cost" Hw.Cycles.Cost.tdreport_native
    (Hw.Cycles.now clock - t0);
  Alcotest.(check int) "counted" 1 (Tdx.Td_module.tdreport_count td)

let test_tdcall_vmcall_scrubs () =
  let _, _, cpu, td = make_td () in
  let host = Vmm.Host.create () in
  let observed_regs = ref (-1L) in
  Tdx.Td_module.set_vmm td (fun v ->
      observed_regs := cpu.Hw.Cpu.regs.(0);
      Vmm.Host.handler host v);
  cpu.Hw.Cpu.regs.(0) <- 0x5EC12E7L;
  (match Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Vmcall (Tdx.Ghci.Cpuid 1)) with
  | Tdx.Td_module.Ok_int _ -> ()
  | _ -> Alcotest.fail "vmcall failed");
  Alcotest.(check int64) "host saw scrubbed regs" 0L !observed_regs;
  Alcotest.(check int64) "guest regs restored" 0x5EC12E7L cpu.Hw.Cpu.regs.(0)

let test_tdcall_map_gpa () =
  let _, _, cpu, td = make_td () in
  (match Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Map_gpa { pfn = 10; shared = true }) with
  | Tdx.Td_module.Ok_unit -> ()
  | _ -> Alcotest.fail "map_gpa failed");
  Alcotest.(check bool) "now shared" true (Tdx.Sept.is_shared (Tdx.Td_module.sept td) 10);
  (match Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Map_gpa { pfn = 10; shared = false }) with
  | Tdx.Td_module.Ok_unit -> ()
  | _ -> Alcotest.fail "unmap_gpa failed");
  Alcotest.(check bool) "private again" false
    (Tdx.Sept.is_shared (Tdx.Td_module.sept td) 10);
  match Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Map_gpa { pfn = 9999; shared = true }) with
  | Tdx.Td_module.Error_leaf _ -> ()
  | _ -> Alcotest.fail "oob map_gpa accepted"

let test_measure_initial_finalizes () =
  let _, _, cpu, td = make_td () in
  Tdx.Td_module.measure_initial td (Bytes.of_string "firmware");
  ignore (Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Tdreport { report_data = Bytes.empty }));
  Alcotest.check_raises "post-finalize measure rejected"
    (Invalid_argument "Td_module.measure_initial: TD build already finalized") (fun () ->
      Tdx.Td_module.measure_initial td (Bytes.of_string "late"))

let test_async_exit_scrub () =
  let _, _, cpu, td = make_td () in
  cpu.Hw.Cpu.regs.(5) <- 777L;
  let seen = ref (-1L) in
  Tdx.Td_module.with_async_exit td cpu (fun () -> seen := cpu.Hw.Cpu.regs.(5));
  Alcotest.(check int64) "host sees zeros" 0L !seen;
  Alcotest.(check int64) "restored after resume" 777L cpu.Hw.Cpu.regs.(5)

(* ------------------------------------------------------------------ *)
(* Vmm devices                                                         *)
(* ------------------------------------------------------------------ *)

let test_device_dma_policy () =
  let mem, _, cpu, td = make_td () in
  let dev = Vmm.Device.create ~name:"virtio-blk" ~mem ~sept:(Tdx.Td_module.sept td) in
  Hw.Phys_mem.write_bytes mem (Hw.Phys_mem.addr_of_pfn 20) (Bytes.of_string "private!");
  (* Private frame: blocked. *)
  (match Vmm.Device.dma_read dev ~gpa:(Hw.Phys_mem.addr_of_pfn 20) ~len:8 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "DMA read of private memory succeeded");
  (match Vmm.Device.dma_write dev ~gpa:(Hw.Phys_mem.addr_of_pfn 20) (Bytes.of_string "x") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "DMA write to private memory succeeded");
  Alcotest.(check int) "blocked twice" 2 (Vmm.Device.blocked_dma_count dev);
  (* Share the frame via tdcall, then DMA works. *)
  ignore (Tdx.Td_module.tdcall td cpu (Tdx.Ghci.Map_gpa { pfn = 20; shared = true }));
  (match Vmm.Device.dma_read dev ~gpa:(Hw.Phys_mem.addr_of_pfn 20) ~len:8 with
  | Ok b -> Alcotest.(check string) "reads shared" "private!" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  (* A range straddling a private frame is still blocked. *)
  match
    Vmm.Device.dma_read dev ~gpa:(Hw.Phys_mem.addr_of_pfn 20 + 4000) ~len:200
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "straddling DMA succeeded"

let test_host_cpuid_and_log () =
  let host = Vmm.Host.create () in
  Vmm.Host.set_cpuid host ~leaf:7 42L;
  (match Vmm.Host.handler host (Tdx.Ghci.Cpuid 7) with
  | Tdx.Td_module.V_int 42L -> ()
  | _ -> Alcotest.fail "configured cpuid");
  (match Vmm.Host.handler host (Tdx.Ghci.Cpuid 3) with
  | Tdx.Td_module.V_int _ -> ()
  | _ -> Alcotest.fail "default cpuid");
  ignore (Vmm.Host.handler host (Tdx.Ghci.Io_write { port = 80; data = Bytes.of_string "leaked-bytes" }));
  Alcotest.(check bool) "observed" true (Vmm.Host.observed_contains host "leaked-bytes");
  Alcotest.(check bool) "not observed" false (Vmm.Host.observed_contains host "absent");
  Alcotest.(check int) "vmcall log" 3 (List.length (Vmm.Host.vmcall_log host))

let test_host_interrupt_queue () =
  let host = Vmm.Host.create () in
  Alcotest.(check (option int)) "empty" None (Vmm.Host.pending_interrupt host);
  Vmm.Host.inject_external_interrupt host ~vector:34;
  Vmm.Host.inject_external_interrupt host ~vector:33;
  Alcotest.(check (option int)) "fifo peek" (Some 34) (Vmm.Host.pending_interrupt host);
  Alcotest.(check (option int)) "take" (Some 34) (Vmm.Host.take_interrupt host);
  Alcotest.(check (option int)) "next" (Some 33) (Vmm.Host.take_interrupt host);
  Alcotest.(check (option int)) "drained" None (Vmm.Host.take_interrupt host)

let () =
  Alcotest.run "tdx-vmm"
    [
      ( "sept",
        [
          Alcotest.test_case "default private" `Quick test_sept_default_private;
          Alcotest.test_case "convert" `Quick test_sept_convert;
        ] );
      ( "attest",
        [
          Alcotest.test_case "measurement chain" `Quick test_attest_measurement_chain;
          Alcotest.test_case "report verify" `Quick test_attest_report_verify;
          Alcotest.test_case "rtmr" `Quick test_attest_rtmr;
        ] );
      ( "quote",
        [
          Alcotest.test_case "roundtrip" `Quick test_quote_roundtrip;
          Alcotest.test_case "forged report" `Quick test_quote_rejects_forged_report;
          Alcotest.test_case "tampered/wrong key" `Quick test_quote_rejects_tampered_body;
        ] );
      ( "td_module",
        [
          Alcotest.test_case "tdcall privileged" `Quick test_tdcall_privileged;
          Alcotest.test_case "report cost" `Quick test_tdcall_report_cost;
          Alcotest.test_case "vmcall scrubs context" `Quick test_tdcall_vmcall_scrubs;
          Alcotest.test_case "map_gpa" `Quick test_tdcall_map_gpa;
          Alcotest.test_case "measure finalization" `Quick test_measure_initial_finalizes;
          Alcotest.test_case "async exit scrub" `Quick test_async_exit_scrub;
        ] );
      ( "vmm",
        [
          Alcotest.test_case "device DMA policy" `Quick test_device_dma_policy;
          Alcotest.test_case "host cpuid/log" `Quick test_host_cpuid_and_log;
          Alcotest.test_case "interrupt queue" `Quick test_host_interrupt_queue;
        ] );
    ]
