(* Tests for the deprivileged guest kernel running over the native privops
   table (direct privileged execution, Table 4 native costs). *)

let make_kernel ?(frames = 8192) ?(cma_frames = 1024) () =
  let mem = Hw.Phys_mem.create ~frames in
  let clock = Hw.Cycles.clock () in
  let cpu = Hw.Cpu.create ~id:0 ~mem ~clock ~timer_period:100_000 () in
  let td = Tdx.Td_module.create ~mem ~clock ~hw_key:(Crypto.Sha256.digest_string "k") in
  let host = Vmm.Host.create () in
  Tdx.Td_module.set_vmm td (Vmm.Host.handler host);
  let privops = Kernel.Privops.native ~cpu ~td in
  let k = Kernel.boot ~mem ~cpu ~td ~privops ~reserved_frames:64 ~cma_frames in
  (k, cpu, host)

let enter_task k task =
  k.Kernel.privops.Kernel.Privops.write_cr3 ~root_pfn:task.Kernel.Task.root_pfn

(* ------------------------------------------------------------------ *)
(* Alloc                                                               *)
(* ------------------------------------------------------------------ *)

let test_alloc_basic () =
  let a = Kernel.Alloc.create ~first_pfn:100 ~frames:10 in
  Alcotest.(check int) "available" 10 (Kernel.Alloc.available a);
  let p1 = Option.get (Kernel.Alloc.alloc a) in
  let p2 = Option.get (Kernel.Alloc.alloc a) in
  Alcotest.(check bool) "distinct" true (p1 <> p2);
  Alcotest.(check bool) "in range" true (p1 >= 100 && p1 < 110);
  Kernel.Alloc.free a p1;
  Alcotest.(check int) "used" 1 (Kernel.Alloc.used a);
  Alcotest.check_raises "double free" (Invalid_argument "Alloc.free: double free") (fun () ->
      Kernel.Alloc.free a p1);
  Alcotest.check_raises "foreign pfn" (Invalid_argument "Alloc: pfn outside this allocator")
    (fun () -> Kernel.Alloc.free a 50)

let test_alloc_exhaustion () =
  let a = Kernel.Alloc.create ~first_pfn:0 ~frames:3 in
  ignore (Kernel.Alloc.alloc a);
  ignore (Kernel.Alloc.alloc a);
  ignore (Kernel.Alloc.alloc a);
  Alcotest.(check (option int)) "exhausted" None (Kernel.Alloc.alloc a)

let test_alloc_contig () =
  let a = Kernel.Alloc.create ~first_pfn:10 ~frames:16 in
  (* Fragment: take pfn 10, leaving 11.. free. *)
  let first = Option.get (Kernel.Alloc.alloc a) in
  Alcotest.(check int) "first" 10 first;
  (match Kernel.Alloc.alloc_contig a 8 with
  | Some base ->
      Alcotest.(check int) "contiguous after fragment" 11 base;
      for pfn = base to base + 7 do
        Alcotest.(check bool) "marked used" true (Kernel.Alloc.is_allocated a pfn)
      done
  | None -> Alcotest.fail "contig alloc failed");
  Alcotest.(check (option int)) "too big" None (Kernel.Alloc.alloc_contig a 8)

let prop_alloc_unique =
  QCheck.Test.make ~name:"alloc returns unique pfns" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let a = Kernel.Alloc.create ~first_pfn:0 ~frames:256 in
      let got = List.init n (fun _ -> Kernel.Alloc.alloc a) in
      let pfns = List.filter_map Fun.id got in
      List.length pfns = n
      && List.length (List.sort_uniq compare pfns) = n)

(* ------------------------------------------------------------------ *)
(* Vma                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vma_add_find () =
  let r1 = { Kernel.Vma.start = 0x1000; len = 0x3000; prot = Kernel.Vma.prot_rw; kind = Kernel.Vma.Anon } in
  let r2 = { Kernel.Vma.start = 0x10000; len = 0x1000; prot = Kernel.Vma.prot_r; kind = Kernel.Vma.Common } in
  let t = Result.get_ok (Kernel.Vma.add Kernel.Vma.empty r1) in
  let t = Result.get_ok (Kernel.Vma.add t r2) in
  (match Kernel.Vma.find t 0x2fff with
  | Some r -> Alcotest.(check int) "found r1" 0x1000 r.Kernel.Vma.start
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "gap not found" true (Kernel.Vma.find t 0x5000 = None);
  Alcotest.(check int) "common bytes" 0x1000 (Kernel.Vma.total_bytes t Kernel.Vma.Common)

let test_vma_rejects () =
  let r1 = { Kernel.Vma.start = 0x1000; len = 0x2000; prot = Kernel.Vma.prot_rw; kind = Kernel.Vma.Anon } in
  let t = Result.get_ok (Kernel.Vma.add Kernel.Vma.empty r1) in
  (match Kernel.Vma.add t { r1 with Kernel.Vma.start = 0x2000 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlap accepted");
  (match Kernel.Vma.add t { r1 with Kernel.Vma.start = 0x8001 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unaligned accepted");
  match Kernel.Vma.add t { r1 with Kernel.Vma.start = 0x8000; len = 0 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted"

let test_vma_find_gap () =
  let add t r = Result.get_ok (Kernel.Vma.add t r) in
  let t =
    add
      (add Kernel.Vma.empty
         { Kernel.Vma.start = 0x10000; len = 0x2000; prot = Kernel.Vma.prot_rw; kind = Kernel.Vma.Anon })
      { Kernel.Vma.start = 0x14000; len = 0x1000; prot = Kernel.Vma.prot_rw; kind = Kernel.Vma.Anon }
  in
  (* A 2-page gap exists at 0x12000. *)
  Alcotest.(check (option int)) "fits in hole" (Some 0x12000)
    (Kernel.Vma.find_gap t ~hint:0x10000 ~len:0x2000 ~limit:0x100000);
  (* Requests larger than the hole go after the last region. *)
  Alcotest.(check (option int)) "after last" (Some 0x15000)
    (Kernel.Vma.find_gap t ~hint:0x10000 ~len:0x3000 ~limit:0x100000);
  Alcotest.(check (option int)) "limit respected" None
    (Kernel.Vma.find_gap t ~hint:0x10000 ~len:0x3000 ~limit:0x16000)

(* ------------------------------------------------------------------ *)
(* Boot                                                                *)
(* ------------------------------------------------------------------ *)

let test_boot_state () =
  let k, cpu, _ = make_kernel () in
  Alcotest.(check bool) "smep on" true (Hw.Cr.smep cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "smap on" true (Hw.Cr.smap cpu.Hw.Cpu.cr);
  Alcotest.(check bool) "wp on" true (Hw.Cr.wp cpu.Hw.Cpu.cr);
  Alcotest.(check int) "cr3 = kernel root" k.Kernel.kernel_root (Hw.Cr.root_pfn cpu.Hw.Cpu.cr)

let test_direct_map_on_demand () =
  let k, cpu, _ = make_kernel () in
  let pfn = Option.get (Kernel.Alloc.alloc k.Kernel.frame_alloc) in
  Kernel.ensure_direct_map k ~pfn;
  (* The kernel can now reach the frame through the direct map. *)
  let va = Kernel.Layout.direct_map (Hw.Phys_mem.addr_of_pfn pfn) in
  Hw.Cpu.write_u64 cpu va 99L;
  Alcotest.(check int64) "direct map works" 99L (Hw.Cpu.read_u64 cpu va);
  (* Idempotent. *)
  Kernel.ensure_direct_map k ~pfn

(* ------------------------------------------------------------------ *)
(* Tasks, paging                                                       *)
(* ------------------------------------------------------------------ *)

let test_task_paging () =
  let k, cpu, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"prog" ~kind:Kernel.Task.Normal in
  enter_task k task;
  let addr = Result.get_ok (Kernel.mmap k task ~len:0x4000 ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  (* Demand paging: nothing mapped yet. *)
  Alcotest.(check (option int)) "unmapped before fault" None (Kernel.resolve_pfn k task ~addr);
  let pf0 = k.Kernel.stats.Kernel.page_faults in
  (match Kernel.handle_page_fault k task ~addr ~kind:Hw.Fault.Write with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "fault counted" (pf0 + 1) k.Kernel.stats.Kernel.page_faults;
  Alcotest.(check bool) "mapped after fault" true (Kernel.resolve_pfn k task ~addr <> None);
  (* The user page is reachable from user mode. *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_u64 cpu addr 1234L;
  Alcotest.(check int64) "user rw" 1234L (Hw.Cpu.read_u64 cpu addr);
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor

let test_fault_outside_vma_segfaults () =
  let k, _, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"bad" ~kind:Kernel.Task.Normal in
  (match Kernel.handle_page_fault k task ~addr:0x7000_0000 ~kind:Hw.Fault.Read with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fault outside vma succeeded");
  Alcotest.(check int) "segfault counted" 1 k.Kernel.stats.Kernel.segfaults;
  (* Write fault on a read-only region also segfaults. *)
  let addr = Result.get_ok (Kernel.mmap k task ~len:0x1000 ~prot:Kernel.Vma.prot_r ~kind:Kernel.Vma.Anon) in
  match Kernel.handle_page_fault k task ~addr ~kind:Hw.Fault.Write with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "write fault on ro region succeeded"

let test_populate_pins () =
  let k, _, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"sb" ~kind:(Kernel.Task.Sandboxed 1) in
  let len = 16 * 4096 in
  let addr = Result.get_ok (Kernel.mmap k task ~len ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Confined) in
  let used0 = Kernel.Alloc.used k.Kernel.cma in
  (match Kernel.populate k task ~start:addr ~len with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "confined frames from CMA" (used0 + 16) (Kernel.Alloc.used k.Kernel.cma);
  for i = 0 to 15 do
    Alcotest.(check bool) "page present" true
      (Kernel.resolve_pfn k task ~addr:(addr + (i * 4096)) <> None)
  done

let test_clone_shares_fork_copies () =
  let k, cpu, _ = make_kernel () in
  let parent = Kernel.create_task k ~name:"parent" ~kind:Kernel.Task.Normal in
  enter_task k parent;
  let addr = Result.get_ok (Kernel.mmap k parent ~len:0x2000 ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  ignore (Kernel.handle_page_fault k parent ~addr ~kind:Hw.Fault.Write);
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_u64 cpu addr 0xAAL;
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  (* Clone: same address space. *)
  let thread = Kernel.clone_thread k parent ~name:"thread" in
  Alcotest.(check int) "same root" parent.Kernel.Task.root_pfn thread.Kernel.Task.root_pfn;
  (* Fork: different root, same content. *)
  let child = Kernel.fork_process k parent ~name:"child" in
  Alcotest.(check bool) "different root" true
    (child.Kernel.Task.root_pfn <> parent.Kernel.Task.root_pfn);
  let parent_pfn = Option.get (Kernel.resolve_pfn k parent ~addr) in
  let child_pfn = Option.get (Kernel.resolve_pfn k child ~addr) in
  Alcotest.(check bool) "copied frame" true (parent_pfn <> child_pfn);
  Alcotest.(check int64) "copied content" 0xAAL
    (Hw.Phys_mem.read_u64 k.Kernel.mem (Hw.Phys_mem.addr_of_pfn child_pfn));
  (* Writes diverge after fork. *)
  enter_task k child;
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_u64 cpu addr 0xBBL;
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  Alcotest.(check int64) "parent unchanged" 0xAAL
    (Hw.Phys_mem.read_u64 k.Kernel.mem (Hw.Phys_mem.addr_of_pfn parent_pfn))

let test_munmap_frees () =
  let k, _, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"m" ~kind:Kernel.Task.Normal in
  let addr = Result.get_ok (Kernel.mmap k task ~len:0x3000 ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  (match Kernel.populate k task ~start:addr ~len:0x3000 with Ok () -> () | Error e -> Alcotest.fail e);
  let used = Kernel.Alloc.used k.Kernel.frame_alloc in
  (match Kernel.munmap k task ~addr with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "frames freed" (used - 3) (Kernel.Alloc.used k.Kernel.frame_alloc);
  Alcotest.(check (option int)) "unmapped" None (Kernel.resolve_pfn k task ~addr);
  match Kernel.munmap k task ~addr with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double munmap succeeded"

(* ------------------------------------------------------------------ *)
(* TLB staleness audit: every PTE downgrade route must flush           *)
(* ------------------------------------------------------------------ *)

(* The Cpu's TLB happily serves stale translations until flushed (see
   test_hw "tlb staleness semantics"). These tests pin that every privops
   route that downgrades or removes a mapping carries its own flush, so a
   user access can never slip through a revoked PTE. *)

let expect_user_fault name cpu f =
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  (match f () with
  | _ -> cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor; Alcotest.fail (name ^ ": expected a fault")
  | exception Hw.Fault.Fault _ -> cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor)

let map_user_page k cpu task =
  let addr = Result.get_ok (Kernel.mmap k task ~len:0x2000 ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  (match Kernel.populate k task ~start:addr ~len:0x2000 with Ok () -> () | Error e -> Alcotest.fail e);
  enter_task k task;
  (* Warm the TLB with a successful user write. *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_u8 cpu addr 1;
  Hw.Cpu.write_u8 cpu (addr + 0x1000) 1;
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  addr

let downgrade_pte k task addr =
  let pte_addr =
    Option.get (Hw.Page_table.leaf_addr k.Kernel.mem ~root_pfn:task.Kernel.Task.root_pfn addr)
  in
  let ro = Hw.Pte.set_writable (Hw.Phys_mem.read_u64 k.Kernel.mem pte_addr) false in
  (pte_addr, ro)

let test_write_pte_flushes_tlb () =
  let k, cpu, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"t" ~kind:Kernel.Task.Normal in
  let addr = map_user_page k cpu task in
  let pte_addr, ro = downgrade_pte k task addr in
  k.Kernel.privops.Kernel.Privops.write_pte ~pte_addr ro;
  (* No stale window: the very next user write must fault. *)
  expect_user_fault "write after write_pte downgrade" cpu (fun () ->
      Hw.Cpu.write_u8 cpu addr 2);
  (* Reads still fine — only the write permission was revoked. *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  ignore (Hw.Cpu.read_u8 cpu addr);
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor

let test_write_pte_batch_flushes_tlb () =
  let k, cpu, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"t" ~kind:Kernel.Task.Normal in
  let addr = map_user_page k cpu task in
  let d0 = downgrade_pte k task addr in
  let d1 = downgrade_pte k task (addr + 0x1000) in
  k.Kernel.privops.Kernel.Privops.write_pte_batch [| d0; d1 |];
  expect_user_fault "write after batch downgrade (page 0)" cpu (fun () ->
      Hw.Cpu.write_u8 cpu addr 2);
  expect_user_fault "write after batch downgrade (page 1)" cpu (fun () ->
      Hw.Cpu.write_u8 cpu (addr + 0x1000) 2)

let test_munmap_flushes_tlb () =
  let k, cpu, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"t" ~kind:Kernel.Task.Normal in
  let addr = map_user_page k cpu task in
  (match Kernel.munmap k task ~addr with Ok () -> () | Error e -> Alcotest.fail e);
  expect_user_fault "read after munmap" cpu (fun () -> Hw.Cpu.read_u8 cpu addr)

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

let with_user_buffer k task len =
  let addr = Result.get_ok (Kernel.mmap k task ~len ~prot:Kernel.Vma.prot_rw ~kind:Kernel.Vma.Anon) in
  (match Kernel.populate k task ~start:addr ~len with Ok () -> () | Error e -> failwith e);
  addr

let test_syscall_file_roundtrip () =
  let k, cpu, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"io" ~kind:Kernel.Task.Normal in
  enter_task k task;
  let buf = with_user_buffer k task 4096 in
  (* Stage data in user memory, as a program would. *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Hw.Cpu.write_bytes cpu buf (Bytes.of_string "hello kernel fs");
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  let fd =
    match Kernel.syscall k task (Kernel.Syscall.Open { path = "/tmp/out" }) with
    | Kernel.Syscall.Rint fd -> fd
    | r -> Alcotest.failf "open: %a" Kernel.Syscall.pp_result r
  in
  (match Kernel.syscall k task (Kernel.Syscall.Write { fd; user_buf = buf; len = 15 }) with
  | Kernel.Syscall.Rint 15 -> ()
  | r -> Alcotest.failf "write: %a" Kernel.Syscall.pp_result r);
  (* User-destination read: POSIX shape, count back, payload in user memory. *)
  (match Kernel.syscall k task (Kernel.Syscall.Read { fd; user_buf = buf + 512; len = 64 }) with
  | Kernel.Syscall.Rint 15 -> ()
  | r -> Alcotest.failf "read: %a" Kernel.Syscall.pp_result r);
  (* Kernel-buffered read: the payload itself comes back. *)
  (match Kernel.syscall k task (Kernel.Syscall.Read { fd; user_buf = 0; len = 64 }) with
  | Kernel.Syscall.Rbytes b -> Alcotest.(check string) "read back" "hello kernel fs" (Bytes.to_string b)
  | r -> Alcotest.failf "read: %a" Kernel.Syscall.pp_result r);
  (* The user copy really landed in user memory. *)
  cpu.Hw.Cpu.mode <- Hw.Cpu.User;
  Alcotest.(check string) "copied to user" "hello"
    (Bytes.to_string (Hw.Cpu.read_bytes cpu (buf + 512) 5));
  cpu.Hw.Cpu.mode <- Hw.Cpu.Supervisor;
  (match Kernel.syscall k task (Kernel.Syscall.Close { fd }) with
  | Kernel.Syscall.Rint 0 -> ()
  | r -> Alcotest.failf "close: %a" Kernel.Syscall.pp_result r);
  match Kernel.syscall k task (Kernel.Syscall.Read { fd; user_buf = 0; len = 1 }) with
  | Kernel.Syscall.Rerr _ -> ()
  | _ -> Alcotest.fail "read after close succeeded"

let test_syscall_brk_mmap () =
  let k, _, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"mem" ~kind:Kernel.Task.Normal in
  (match Kernel.syscall k task (Kernel.Syscall.Mmap { len = 8192; prot = Kernel.Vma.prot_rw }) with
  | Kernel.Syscall.Raddr a -> Alcotest.(check bool) "user addr" true (Kernel.Layout.is_user_addr a)
  | r -> Alcotest.failf "mmap: %a" Kernel.Syscall.pp_result r);
  let brk0 = task.Kernel.Task.brk in
  match Kernel.syscall k task (Kernel.Syscall.Brk { new_brk = brk0 + 0x10000 }) with
  | Kernel.Syscall.Raddr b -> Alcotest.(check int) "brk grew" (brk0 + 0x10000) b
  | r -> Alcotest.failf "brk: %a" Kernel.Syscall.pp_result r

let test_syscall_futex () =
  let k, _, _ = make_kernel () in
  let a = Kernel.create_task k ~name:"a" ~kind:Kernel.Task.Normal in
  let b = Kernel.create_task k ~name:"b" ~kind:Kernel.Task.Normal in
  ignore b;
  ignore (Kernel.syscall k a Kernel.Syscall.Futex_wait);
  Alcotest.(check bool) "a blocked" true (a.Kernel.Task.state = Kernel.Task.Blocked);
  ignore (Kernel.syscall k b Kernel.Syscall.Futex_wake);
  Alcotest.(check bool) "a runnable" true (a.Kernel.Task.state = Kernel.Task.Runnable)

let test_syscall_counters_and_cost () =
  let k, _, _ = make_kernel () in
  let task = Kernel.create_task k ~name:"c" ~kind:Kernel.Task.Normal in
  let t0 = Hw.Cycles.now k.Kernel.clock in
  let n0 = k.Kernel.stats.Kernel.syscalls in
  ignore (Kernel.syscall k task Kernel.Syscall.Getpid);
  Alcotest.(check int) "syscall counted" (n0 + 1) k.Kernel.stats.Kernel.syscalls;
  Alcotest.(check int) "getpid costs one round trip" Hw.Cycles.Cost.syscall_roundtrip
    (Hw.Cycles.now k.Kernel.clock - t0)

let test_cpuid_ve_path () =
  let k, _, host = make_kernel () in
  let task = Kernel.create_task k ~name:"v" ~kind:Kernel.Task.Normal in
  Vmm.Host.set_cpuid host ~leaf:0 0x756e6547L;
  let v = Kernel.cpuid k task ~leaf:0 in
  Alcotest.(check int64) "host-provided cpuid" 0x756e6547L v;
  Alcotest.(check int) "#VE counted" 1 k.Kernel.stats.Kernel.ve_exits;
  Alcotest.(check int) "vmcall logged" 1 (List.length (Vmm.Host.vmcall_log host))

let test_timer_and_sched () =
  let k, _, _ = make_kernel () in
  let a = Kernel.create_task k ~name:"a" ~kind:Kernel.Task.Normal in
  let b = Kernel.create_task k ~name:"b" ~kind:Kernel.Task.Normal in
  Alcotest.(check bool) "a current" true (Kernel.Sched.current k.Kernel.sched = Some a);
  (* Quantum is 4 ticks; after 4 timer interrupts b runs. *)
  for _ = 1 to 4 do
    Kernel.timer_interrupt k
  done;
  Alcotest.(check bool) "b current" true (Kernel.Sched.current k.Kernel.sched = Some b);
  Alcotest.(check int) "timer irqs" 4 k.Kernel.stats.Kernel.timer_irqs;
  (* Exit b; scheduler falls back to a. *)
  Kernel.exit_task k b ~code:0;
  for _ = 1 to 4 do
    Kernel.timer_interrupt k
  done;
  Alcotest.(check bool) "back to a" true (Kernel.Sched.current k.Kernel.sched = Some a);
  Alcotest.(check int) "live tasks" 1 (Kernel.live_task_count k)

let test_exit_syscall () =
  let k, _, _ = make_kernel () in
  let t1 = Kernel.create_task k ~name:"x" ~kind:Kernel.Task.Normal in
  ignore (Kernel.syscall k t1 (Kernel.Syscall.Exit { code = 3 }));
  Alcotest.(check bool) "dead" true (t1.Kernel.Task.state = Kernel.Task.Dead);
  Alcotest.(check (option int)) "exit code" (Some 3) t1.Kernel.Task.exit_code

(* ------------------------------------------------------------------ *)
(* Fs                                                                  *)
(* ------------------------------------------------------------------ *)

let test_fs_basic () =
  let fs = Kernel.Fs.create () in
  Kernel.Fs.write_file fs "/a" (Bytes.of_string "one");
  Kernel.Fs.append_file fs "/a" (Bytes.of_string "+two");
  Alcotest.(check (option string)) "append" (Some "one+two")
    (Option.map Bytes.to_string (Kernel.Fs.read_file fs "/a"));
  Alcotest.(check (option int)) "size" (Some 7) (Kernel.Fs.file_size fs "/a");
  Alcotest.(check bool) "removed" true (Kernel.Fs.remove fs "/a");
  Alcotest.(check bool) "gone" false (Kernel.Fs.exists fs "/a")

let test_fs_special () =
  let fs = Kernel.Fs.create () in
  let sink = Buffer.create 16 in
  Kernel.Fs.register_special fs "/sys/debug/chan"
    ~read:(fun () -> Bytes.of_string "from-monitor")
    ~write:(fun b ~len -> Buffer.add_subbytes sink b 0 len);
  Alcotest.(check (option string)) "special read" (Some "from-monitor")
    (Option.map Bytes.to_string (Kernel.Fs.read_path fs "/sys/debug/chan"));
  ignore (Kernel.Fs.write_path fs "/sys/debug/chan" (Bytes.of_string "to-monitor"));
  Alcotest.(check string) "special write" "to-monitor" (Buffer.contents sink);
  (* The view form delivers only the length-bounded prefix. *)
  Buffer.clear sink;
  Alcotest.(check bool) "view delivered" true
    (Kernel.Fs.write_special_view fs "/sys/debug/chan"
       (Bytes.of_string "view-payload-XXXX") ~len:12);
  Alcotest.(check string) "view prefix" "view-payload" (Buffer.contents sink);
  Alcotest.(check bool) "view on regular path" false
    (Kernel.Fs.write_special_view fs "/not-special" Bytes.empty ~len:0)

(* ------------------------------------------------------------------ *)
(* Native privop costs (Table 4, Native column)                        *)
(* ------------------------------------------------------------------ *)

let test_native_privop_costs () =
  let k, _, _ = make_kernel () in
  let ops = k.Kernel.privops in
  let clock = k.Kernel.clock in
  let measure f =
    let t0 = Hw.Cycles.now clock in
    f ();
    Hw.Cycles.now clock - t0
  in
  let pte_addr = Hw.Phys_mem.addr_of_pfn k.Kernel.kernel_root + 8 * 400 in
  Alcotest.(check int) "pte write native" Hw.Cycles.Cost.pte_write_native
    (measure (fun () -> ops.Kernel.Privops.write_pte ~pte_addr Hw.Pte.empty));
  Alcotest.(check int) "cr native" Hw.Cycles.Cost.cr_write_native
    (measure (fun () -> ops.Kernel.Privops.set_cr_bit ~reg:`Cr4 Hw.Cr.cr4_smap true));
  Alcotest.(check int) "msr native" Hw.Cycles.Cost.msr_write_native
    (measure (fun () -> ops.Kernel.Privops.write_msr Hw.Msr.ia32_lstar 0x1234L));
  Alcotest.(check int) "lidt native" Hw.Cycles.Cost.lidt_native
    (measure (fun () -> ops.Kernel.Privops.lidt (Hw.Idt.create ())))

let test_count_pte_writes_wrapper () =
  let k, _, _ = make_kernel () in
  let counted, read_count = Kernel.Privops.count_pte_writes k.Kernel.privops in
  Alcotest.(check int) "starts at zero" 0 (read_count ());
  let pte_addr = Hw.Phys_mem.addr_of_pfn k.Kernel.kernel_root + (8 * 450) in
  counted.Kernel.Privops.write_pte ~pte_addr Hw.Pte.empty;
  counted.Kernel.Privops.write_pte ~pte_addr Hw.Pte.empty;
  Alcotest.(check int) "counts stores" 2 (read_count ());
  (* The underlying table is untouched by the wrapper. *)
  k.Kernel.privops.Kernel.Privops.write_pte ~pte_addr Hw.Pte.empty;
  Alcotest.(check int) "unwrapped not counted" 2 (read_count ())

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kernel"
    [
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "contig" `Quick test_alloc_contig;
          qt prop_alloc_unique;
        ] );
      ( "vma",
        [
          Alcotest.test_case "add/find" `Quick test_vma_add_find;
          Alcotest.test_case "rejects" `Quick test_vma_rejects;
          Alcotest.test_case "find gap" `Quick test_vma_find_gap;
        ] );
      ( "boot",
        [
          Alcotest.test_case "state" `Quick test_boot_state;
          Alcotest.test_case "direct map on demand" `Quick test_direct_map_on_demand;
        ] );
      ( "paging",
        [
          Alcotest.test_case "task paging" `Quick test_task_paging;
          Alcotest.test_case "segfaults" `Quick test_fault_outside_vma_segfaults;
          Alcotest.test_case "populate pins" `Quick test_populate_pins;
          Alcotest.test_case "clone/fork" `Quick test_clone_shares_fork_copies;
          Alcotest.test_case "munmap frees" `Quick test_munmap_frees;
          Alcotest.test_case "write_pte flushes tlb" `Quick test_write_pte_flushes_tlb;
          Alcotest.test_case "write_pte_batch flushes tlb" `Quick test_write_pte_batch_flushes_tlb;
          Alcotest.test_case "munmap flushes tlb" `Quick test_munmap_flushes_tlb;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "file roundtrip" `Quick test_syscall_file_roundtrip;
          Alcotest.test_case "brk/mmap" `Quick test_syscall_brk_mmap;
          Alcotest.test_case "futex" `Quick test_syscall_futex;
          Alcotest.test_case "counters and cost" `Quick test_syscall_counters_and_cost;
          Alcotest.test_case "cpuid #VE" `Quick test_cpuid_ve_path;
          Alcotest.test_case "timer/sched" `Quick test_timer_and_sched;
          Alcotest.test_case "exit" `Quick test_exit_syscall;
        ] );
      ( "fs",
        [
          Alcotest.test_case "basic" `Quick test_fs_basic;
          Alcotest.test_case "special nodes" `Quick test_fs_special;
        ] );
      ( "costs",
        [
          Alcotest.test_case "native privops" `Quick test_native_privop_costs;
          Alcotest.test_case "pte-write counter" `Quick test_count_pte_writes_wrapper;
        ] );
    ]
