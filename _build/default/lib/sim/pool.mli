(** Warm-start sandbox pool (§9.2): the paper notes the one-time 11.5–52.7%
    initialization overhead "can be pre-initialized in real settings (i.e.,
    by adopting warm-start techniques)". This module implements that: a pool
    of sandboxes whose confined memory is declared, pinned and LibOS-booted
    ahead of client arrival, so a session's time-to-first-byte excludes the
    pinning cost. *)

type entry = { sb : Erebor.Sandbox.t; libos : Libos.t }

type t

val create :
  mgr:Erebor.Sandbox.manager ->
  name_prefix:string ->
  heap_bytes:int ->
  threads:int ->
  ?preload:(string * bytes) list ->
  size:int ->
  unit ->
  (t, string) result
(** Pre-warm [size] ready sandboxes (paying the init cost now). *)

val acquire : t -> (entry, string) result
(** A ready sandbox (warm hit), or a cold boot when the pool is empty. *)

val prewarm : t -> int -> (unit, string) result
(** Refill the pool by [n] entries (background work in a real deployment). *)

val ready : t -> int
val warm_hits : t -> int
val cold_boots : t -> int
