type entry = { sb : Erebor.Sandbox.t; libos : Libos.t }

type t = {
  mgr : Erebor.Sandbox.manager;
  name_prefix : string;
  heap_bytes : int;
  threads : int;
  preload : (string * bytes) list;
  mutable ready_list : entry list;
  mutable seq : int;
  mutable hits : int;
  mutable colds : int;
}

let boot_one t =
  let name = Printf.sprintf "%s-%d" t.name_prefix t.seq in
  t.seq <- t.seq + 1;
  match
    Erebor.Sandbox.create_sandbox t.mgr ~name ~confined_budget:(t.heap_bytes + (16 * 4096))
  with
  | Error e -> Error e
  | Ok sb -> (
      match
        Libos.boot ~mgr:t.mgr ~sb ~heap_bytes:t.heap_bytes ~threads:t.threads
          ~preload:t.preload
      with
      | Error e -> Error e
      | Ok libos -> Ok { sb; libos })

let prewarm t n =
  let rec go i =
    if i = 0 then Ok ()
    else
      match boot_one t with
      | Error e -> Error e
      | Ok entry ->
          t.ready_list <- entry :: t.ready_list;
          go (i - 1)
  in
  go n

let create ~mgr ~name_prefix ~heap_bytes ~threads ?(preload = []) ~size () =
  let t =
    { mgr; name_prefix; heap_bytes; threads; preload; ready_list = []; seq = 0;
      hits = 0; colds = 0 }
  in
  match prewarm t size with Ok () -> Ok t | Error e -> Error e

let acquire t =
  match t.ready_list with
  | entry :: rest ->
      t.ready_list <- rest;
      t.hits <- t.hits + 1;
      Ok entry
  | [] ->
      t.colds <- t.colds + 1;
      boot_one t

let ready t = List.length t.ready_list
let warm_hits t = t.hits
let cold_boots t = t.colds
