type setting = Native | Libos_only | Erebor_mmu | Erebor_exit | Erebor_full

let all = [ Native; Libos_only; Erebor_mmu; Erebor_exit; Erebor_full ]

let name = function
  | Native -> "native"
  | Libos_only -> "libos-only"
  | Erebor_mmu -> "erebor-mmu"
  | Erebor_exit -> "erebor-exit"
  | Erebor_full -> "erebor"

let of_name s =
  List.find_opt (fun setting -> name setting = s) all

let uses_libos = function
  | Native -> false
  | Libos_only | Erebor_mmu | Erebor_exit | Erebor_full -> true

let emc_privops = function
  | Erebor_mmu | Erebor_full -> true
  | Native | Libos_only | Erebor_exit -> false

let interposes_exits = function
  | Erebor_exit | Erebor_full -> true
  | Native | Libos_only | Erebor_mmu -> false

let has_monitor = function Native -> false | _ -> true
