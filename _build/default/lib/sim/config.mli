(** The five evaluation settings of §9: Native, the LibOS-only ablation, the
    two partial-Erebor ablations, and the full system. *)

type setting =
  | Native        (** Plain CVM, direct privileged execution. *)
  | Libos_only    (** LibOS runtime services, no monitor. *)
  | Erebor_mmu    (** + memory-view isolation (EMC for every privop). *)
  | Erebor_exit   (** + exit interposition only. *)
  | Erebor_full   (** Complete Erebor. *)

val all : setting list
val name : setting -> string
val of_name : string -> setting option

val uses_libos : setting -> bool
(** Everything except [Native]. *)

val emc_privops : setting -> bool
(** Sensitive operations go through the monitor: [Erebor_mmu],
    [Erebor_full]. *)

val interposes_exits : setting -> bool
(** Syscalls/interrupts pass the monitor first: [Erebor_exit],
    [Erebor_full]. *)

val has_monitor : setting -> bool
(** A monitor is installed at all (everything except [Native];
    [Libos_only] keeps one purely to host the sandbox bookkeeping, with
    native privops and no interposition). *)
