lib/sim/machine.ml: Array Buffer Bytes Config Crypto Erebor Hw Kernel Libos Option Stats Tdx Vmm
