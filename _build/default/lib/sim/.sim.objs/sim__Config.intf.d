lib/sim/config.mli:
