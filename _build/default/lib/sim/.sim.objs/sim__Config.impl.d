lib/sim/config.ml: List
