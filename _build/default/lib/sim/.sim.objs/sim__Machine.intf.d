lib/sim/machine.mli: Config Crypto Erebor Hw Kernel Stats
