lib/sim/pool.ml: Erebor Libos List Printf
