lib/sim/pool.mli: Erebor Libos
