lib/sim/stats.ml: Fmt
