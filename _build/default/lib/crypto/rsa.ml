type public = { n : Bignum.t; e : Bignum.t }
type keypair = { public : public; d : Bignum.t }

let small_primes =
  [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71;
    73; 79; 83; 89; 97; 101; 103; 107; 109; 113 ]

let miller_rabin_rounds = 24

let random_below rng n =
  (* Uniform-enough value in [2, n-2] for witness selection. *)
  let bytes_needed = (Bignum.bit_length n + 7) / 8 in
  let rec draw () =
    let v = Bignum.of_bytes (Drbg.bytes rng bytes_needed) in
    let v = Bignum.mod_ v n in
    if Bignum.compare v (Bignum.of_int 2) < 0 then draw () else v
  in
  draw ()

let is_probable_prime rng n =
  if Bignum.compare n (Bignum.of_int 2) < 0 then false
  else if Bignum.equal n (Bignum.of_int 2) then true
  else if Bignum.is_even n then false
  else if List.exists (fun p -> Bignum.equal n (Bignum.of_int p)) small_primes then true
  else if
    List.exists
      (fun p -> Bignum.is_zero (Bignum.mod_ n (Bignum.of_int p)))
      small_primes
  then false
  else begin
    (* n - 1 = d * 2^s *)
    let n_minus_1 = Bignum.sub n Bignum.one in
    let rec strip d s = if Bignum.is_even d then strip (Bignum.shift_right_one d) (s + 1) else (d, s) in
    let d, s = strip n_minus_1 0 in
    let ctx = Bignum.Mont.create n in
    let witness_passes a =
      let x = ref (Bignum.Mont.modpow ctx a d) in
      if Bignum.equal !x Bignum.one || Bignum.equal !x n_minus_1 then true
      else begin
        let rec square i =
          if i >= s - 1 then false
          else begin
            x := Bignum.Mont.modpow ctx !x (Bignum.of_int 2);
            if Bignum.equal !x n_minus_1 then true else square (i + 1)
          end
        in
        square 0
      end
    in
    let rec rounds i =
      i = miller_rabin_rounds || (witness_passes (random_below rng n) && rounds (i + 1))
    in
    rounds 0
  end

let generate_prime rng ~bits =
  if bits < 16 then invalid_arg "Rsa.generate_prime: too few bits";
  let rec try_candidate () =
    let raw = Drbg.bytes rng ((bits + 7) / 8) in
    (* Force the top two bits (so products reach full width) and oddness. *)
    Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) lor 0xC0));
    Bytes.set raw
      (Bytes.length raw - 1)
      (Char.chr (Char.code (Bytes.get raw (Bytes.length raw - 1)) lor 1));
    let candidate = Bignum.of_bytes raw in
    if is_probable_prime rng candidate then candidate else try_candidate ()
  in
  try_candidate ()

let e65537 = Bignum.of_int 65537

let generate rng ~bits =
  if bits < 128 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec attempt () =
    let p = generate_prime rng ~bits:half in
    let q = generate_prime rng ~bits:(bits - half) in
    if Bignum.equal p q then attempt ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.invmod e65537 phi with
      | Some d -> { public = { n; e = e65537 }; d }
      | None -> attempt ()
    end
  in
  attempt ()

let modulus_bytes pub = (Bignum.bit_length pub.n + 7) / 8

(* EMSA-PKCS1-v1_5-style padding: 00 01 FF..FF 00 || SHA256(m). *)
let encode_digest ~width msg =
  let digest = Sha256.digest_bytes msg in
  if width < Bytes.length digest + 11 then invalid_arg "Rsa: modulus too small for digest";
  let out = Bytes.make width '\xff' in
  Bytes.set out 0 '\x00';
  Bytes.set out 1 '\x01';
  Bytes.set out (width - 33) '\x00';
  Bytes.blit digest 0 out (width - 32) 32;
  out

let sign kp msg =
  let width = modulus_bytes kp.public in
  let m = Bignum.of_bytes (encode_digest ~width msg) in
  let ctx = Bignum.Mont.create kp.public.n in
  Bignum.to_bytes ~len:width (Bignum.Mont.modpow ctx m kp.d)

let verify pub msg ~signature =
  let width = modulus_bytes pub in
  Bytes.length signature = width
  &&
  let s = Bignum.of_bytes signature in
  Bignum.compare s pub.n < 0
  &&
  let ctx = Bignum.Mont.create pub.n in
  let recovered = Bignum.to_bytes ~len:width (Bignum.Mont.modpow ctx s pub.e) in
  Bytes.equal recovered (encode_digest ~width msg)
