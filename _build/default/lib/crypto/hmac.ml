let block = Sha256.block_size

let normalize_key key =
  let key = if Bytes.length key > block then Sha256.digest_bytes key else key in
  let padded = Bytes.make block '\000' in
  Bytes.blit key 0 padded 0 (Bytes.length key);
  padded

let xor_pad key byte =
  let out = Bytes.create block in
  for i = 0 to block - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  out

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.digest inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.digest outer

let mac_string ~key s = mac ~key (Bytes.of_string s)

(* Constant-time equality: accumulate the OR of byte differences. *)
let verify ~key msg ~tag =
  let expected = mac ~key msg in
  if Bytes.length tag <> Bytes.length expected then false
  else begin
    let diff = ref 0 in
    for i = 0 to Bytes.length expected - 1 do
      diff := !diff lor (Char.code (Bytes.get expected i) lxor Char.code (Bytes.get tag i))
    done;
    !diff = 0
  end
