(** HMAC-SHA256 (RFC 2104), used to authenticate channel messages and to sign
    simulated TDX attestation reports. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. Keys
    longer than one block are hashed first, per RFC 2104. *)

val mac_string : key:bytes -> string -> bytes
(** [mac_string ~key s] tags a string message. *)

val verify : key:bytes -> bytes -> tag:bytes -> bool
(** Constant-time comparison of the expected tag against [tag]. *)
