(** Arbitrary-precision natural numbers, just large enough to support
    finite-field Diffie-Hellman for the attested channel. Little-endian
    26-bit limbs; all values are non-negative. *)

type t
(** Immutable natural number. *)

val zero : t
val one : t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val of_hex : string -> t
(** Parse a big-endian hex string (whitespace tolerated). *)

val of_bytes : bytes -> t
(** Parse big-endian bytes. *)

val to_bytes : ?len:int -> t -> bytes
(** Big-endian bytes, left-padded with zeros to [len] when given. Raises
    [Invalid_argument] if the value does not fit in [len] bytes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t

val bit_length : t -> int
(** Position of the highest set bit; 0 for zero. *)

val test_bit : t -> int -> bool

val mod_ : t -> t -> t
(** [mod_ a m] is [a mod m], computed by shift-and-subtract; adequate for the
    occasional reduction outside the Montgomery fast path. *)

val divmod : t -> t -> t * t
(** [divmod a b] is (quotient, remainder); binary long division. Raises
    [Invalid_argument] on a zero divisor. *)

val invmod : t -> t -> t option
(** [invmod a m] is the inverse of [a] modulo [m], when gcd(a, m) = 1. *)

val is_even : t -> bool

val shift_right_one : t -> t

module Mont : sig
  type ctx
  (** Precomputed Montgomery context for a fixed odd modulus. *)

  val create : t -> ctx
  (** Raises [Invalid_argument] if the modulus is even or < 3. *)

  val modulus : ctx -> t

  val modpow : ctx -> t -> t -> t
  (** [modpow ctx base exp] is [base ^ exp mod modulus], by left-to-right
      square-and-multiply over Montgomery products. [base] must be
      < modulus. *)
end
