type sealed = { nonce : bytes; ciphertext : bytes; tag : bytes }

let mac_key ~key ~nonce =
  (* Keystream block 0 provides a one-time MAC key, as in RFC 8439. *)
  Bytes.sub (Chacha20.block ~key ~nonce ~counter:0l) 0 32

let le64 n =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((n lsr (8 * i)) land 0xff))
  done;
  b

let tag_input ~ad ~ciphertext =
  Bytes.concat Bytes.empty
    [ ad; ciphertext; le64 (Bytes.length ad); le64 (Bytes.length ciphertext) ]

let seal ~key ~nonce ~ad plaintext =
  let ciphertext = Chacha20.xor ~key ~nonce plaintext in
  let mk = mac_key ~key ~nonce in
  let tag = Hmac.mac ~key:mk (tag_input ~ad ~ciphertext) in
  { nonce = Bytes.copy nonce; ciphertext; tag }

let open_ ~key ~ad { nonce; ciphertext; tag } =
  if Bytes.length nonce <> Chacha20.nonce_size then None
  else begin
    let mk = mac_key ~key ~nonce in
    if Hmac.verify ~key:mk (tag_input ~ad ~ciphertext) ~tag then
      Some (Chacha20.xor ~key ~nonce ciphertext)
    else None
  end

let sealed_size { nonce; ciphertext; tag } =
  Bytes.length nonce + Bytes.length ciphertext + Bytes.length tag
