let hash_len = Sha256.digest_size

let extract ~salt ~ikm =
  let salt = if Bytes.length salt = 0 then Bytes.make hash_len '\000' else salt in
  Hmac.mac ~key:salt ikm

let expand ~prk ~info ~len =
  if len > 255 * hash_len then invalid_arg "Hkdf.expand: output too long";
  let out = Buffer.create len in
  let prev = ref Bytes.empty in
  let counter = ref 1 in
  while Buffer.length out < len do
    let msg = Bytes.concat Bytes.empty
        [ !prev; Bytes.of_string info; Bytes.make 1 (Char.chr !counter) ]
    in
    let block = Hmac.mac ~key:prk msg in
    Buffer.add_bytes out block;
    prev := block;
    incr counter
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive ~secret ~salt ~info ~len = expand ~prk:(extract ~salt ~ikm:secret) ~info ~len
