(** Deterministic random bit generator built on ChaCha20, used everywhere the
    system needs randomness (keys, nonces, workload generation). Deterministic
    seeding keeps experiments reproducible. *)

type t

val create : seed:string -> t
(** Seed is hashed to a 32-byte key. *)

val bytes : t -> int -> bytes
(** Next [n] pseudorandom bytes. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. Uses
    rejection sampling to avoid modulo bias. *)

val int64 : t -> int64
(** Next 63-bit non-negative value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val reseed : t -> string -> unit
(** Mix fresh entropy into the key. *)
