(** SHA-256 (FIPS 180-4), implemented from scratch for the attestation
    measurement chain and the HMAC construction.

    The incremental interface follows the usual init/feed/digest pattern; a
    context may keep absorbing input until [digest] is called, after which it
    must not be reused. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx
(** Fresh context with the FIPS initial state. *)

val feed : ctx -> ?off:int -> ?len:int -> bytes -> unit
(** [feed ctx b] absorbs [len] bytes of [b] starting at [off] (defaulting to
    the whole buffer). Raises [Invalid_argument] on out-of-range slices. *)

val feed_string : ctx -> string -> unit
(** [feed_string ctx s] absorbs all of [s]. *)

val digest : ctx -> bytes
(** Finalize and return the 32-byte digest. The context must not be fed
    afterwards. *)

val digest_bytes : bytes -> bytes
(** One-shot hash of a byte buffer. *)

val digest_string : string -> bytes
(** One-shot hash of a string. *)

val hex : bytes -> string
(** Lowercase hex rendering of a digest (or any byte buffer). *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64 — the compression-function block size, needed by HMAC. *)
