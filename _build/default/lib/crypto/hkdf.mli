(** HKDF (RFC 5869) over HMAC-SHA256, used to derive the channel's encryption
    and MAC keys from the Diffie-Hellman shared secret. *)

val extract : salt:bytes -> ikm:bytes -> bytes
(** [extract ~salt ~ikm] is the 32-byte pseudorandom key. An empty salt is
    treated as 32 zero bytes, per the RFC. *)

val expand : prk:bytes -> info:string -> len:int -> bytes
(** [expand ~prk ~info ~len] derives [len] bytes of output keying material.
    Raises [Invalid_argument] if [len] exceeds [255 * 32]. *)

val derive : secret:bytes -> salt:bytes -> info:string -> len:int -> bytes
(** Extract-then-expand in one step. *)
