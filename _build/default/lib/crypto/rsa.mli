(** RSA signatures over the in-repo bignum, for the attestation *quoting*
    layer: real TDX converts CPU-MACed TDREPORTs into asymmetric quotes so
    relying parties need no shared secret; {!Tdx.Quote} does the same with
    these signatures. PKCS#1 v1.5-style encoding over SHA-256. *)

type public = { n : Bignum.t; e : Bignum.t }
type keypair = { public : public; d : Bignum.t }

val is_probable_prime : Drbg.t -> Bignum.t -> bool
(** Miller-Rabin, 24 rounds after small-prime trial division. *)

val generate_prime : Drbg.t -> bits:int -> Bignum.t
(** Random probable prime with the top two bits and the low bit set. *)

val generate : Drbg.t -> bits:int -> keypair
(** [bits]-bit modulus, e = 65537. Regenerates primes until
    gcd(e, φ) = 1. Raises [Invalid_argument] for [bits] < 128. *)

val sign : keypair -> bytes -> bytes
(** PKCS#1 v1.5-style signature over SHA-256(message), modulus-width. *)

val verify : public -> bytes -> signature:bytes -> bool

val modulus_bytes : public -> int
