(** Authenticated encryption for the secure channel: ChaCha20 for
    confidentiality, HMAC-SHA256 (encrypt-then-MAC) for integrity. The MAC key
    is derived from keystream block 0, mirroring the RFC 8439 AEAD layout, and
    the tag covers the associated data, the ciphertext, and their lengths. *)

type sealed = {
  nonce : bytes;       (** 12-byte per-message nonce. *)
  ciphertext : bytes;
  tag : bytes;         (** 32-byte HMAC tag. *)
}

val seal : key:bytes -> nonce:bytes -> ad:bytes -> bytes -> sealed
(** [seal ~key ~nonce ~ad plaintext] encrypts and authenticates. Raises
    [Invalid_argument] on wrong key/nonce sizes. *)

val open_ : key:bytes -> ad:bytes -> sealed -> bytes option
(** [open_ ~key ~ad sealed] verifies the tag (in constant time) and decrypts;
    [None] when authentication fails. *)

val sealed_size : sealed -> int
(** Wire size of a sealed message: nonce + ciphertext + tag. *)
