(** Finite-field Diffie-Hellman over the RFC 3526 1536-bit MODP group, the
    key-exchange half of the attested secure channel (§6.3 of the paper). *)

type keypair = {
  secret : Bignum.t;  (** Random exponent; never leaves this process. *)
  public : Bignum.t;  (** g^secret mod p. *)
}

val group_prime : Bignum.t
(** The 1536-bit safe prime from RFC 3526 group 5. *)

val generator : Bignum.t
(** g = 2. *)

val generate : Drbg.t -> keypair
(** Fresh keypair from 256 bits of DRBG output. *)

val public_bytes : keypair -> bytes
(** Fixed-width (192-byte) encoding of the public value for the wire. *)

val shared_secret : keypair -> peer_public:bytes -> bytes option
(** [shared_secret kp ~peer_public] is the 32-byte HKDF-extracted shared
    secret, or [None] when the peer value is out of range (0, 1, or >= p),
    which rejects small-subgroup confinement games. *)
