lib/crypto/aead.ml: Bytes Chacha20 Char Hmac
