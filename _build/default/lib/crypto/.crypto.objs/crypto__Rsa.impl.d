lib/crypto/rsa.ml: Bignum Bytes Char Drbg List Sha256
