lib/crypto/drbg.mli:
