lib/crypto/dh.ml: Bignum Bytes Char Drbg Hkdf Lazy
