lib/crypto/drbg.ml: Bytes Chacha20 Char Int64 Sha256
