lib/crypto/aead.mli:
