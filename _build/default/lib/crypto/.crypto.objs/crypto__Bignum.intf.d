lib/crypto/bignum.mli:
