lib/crypto/bignum.ml: Array Bytes Char Stdlib String
