lib/crypto/hkdf.mli:
