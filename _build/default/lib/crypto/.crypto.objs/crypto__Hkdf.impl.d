lib/crypto/hkdf.ml: Buffer Bytes Char Hmac Sha256
