lib/crypto/hmac.mli:
