type t = {
  cpuid_table : (int, int64) Hashtbl.t;
  interrupts : int Queue.t;
  mutable observed : bytes list;
  mutable vmcalls : Tdx.Ghci.vmcall list;
}

let create () =
  {
    cpuid_table = Hashtbl.create 8;
    interrupts = Queue.create ();
    observed = [];
    vmcalls = [];
  }

let default_cpuid leaf = Int64.of_int (0x47656e75 lxor leaf) (* "Genu"-flavoured *)

let set_cpuid t ~leaf v = Hashtbl.replace t.cpuid_table leaf v

let handler t vmcall =
  t.vmcalls <- vmcall :: t.vmcalls;
  match vmcall with
  | Tdx.Ghci.Cpuid leaf ->
      Tdx.Td_module.V_int
        (Option.value ~default:(default_cpuid leaf) (Hashtbl.find_opt t.cpuid_table leaf))
  | Tdx.Ghci.Hlt -> Tdx.Td_module.V_unit
  | Tdx.Ghci.Io_read { port; len } ->
      Tdx.Td_module.V_bytes (Bytes.make len (Char.chr (port land 0xff)))
  | Tdx.Ghci.Io_write { data; _ } ->
      t.observed <- Bytes.copy data :: t.observed;
      Tdx.Td_module.V_unit
  | Tdx.Ghci.Mmio_read { len; _ } -> Tdx.Td_module.V_bytes (Bytes.make len '\000')
  | Tdx.Ghci.Mmio_write { data; _ } ->
      t.observed <- Bytes.copy data :: t.observed;
      Tdx.Td_module.V_unit

let inject_external_interrupt t ~vector = Queue.add vector t.interrupts

let pending_interrupt t = Queue.peek_opt t.interrupts
let take_interrupt t = Queue.take_opt t.interrupts

let observed t = List.rev t.observed

let observed_contains t needle =
  let contains hay =
    let h = Bytes.to_string hay in
    let n = String.length needle and hl = String.length h in
    let rec go i = i + n <= hl && (String.sub h i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  List.exists contains t.observed

let vmcall_log t = List.rev t.vmcalls
