type t = {
  name : string;
  mem : Hw.Phys_mem.t;
  sept : Tdx.Sept.t;
  mutable blocked : int;
}

let create ~name ~mem ~sept = { name; mem; sept; blocked = 0 }

let name t = t.name

let frames_of_range gpa len =
  let first = Hw.Phys_mem.pfn_of_addr gpa in
  let last = Hw.Phys_mem.pfn_of_addr (gpa + max 0 (len - 1)) in
  List.init (last - first + 1) (fun i -> first + i)

let check_shared t gpa len =
  if len < 0 || gpa < 0 then Error "bad DMA range"
  else begin
    let frames = Tdx.Sept.frames t.sept in
    let bad =
      List.find_opt
        (fun pfn -> pfn >= frames || not (Tdx.Sept.is_shared t.sept pfn))
        (frames_of_range gpa len)
    in
    match bad with
    | Some pfn ->
        t.blocked <- t.blocked + 1;
        Error (Printf.sprintf "IOMMU: DMA to private/invalid pfn %d blocked" pfn)
    | None -> Ok ()
  end

let dma_read t ~gpa ~len =
  Result.map (fun () -> Hw.Phys_mem.read_bytes t.mem gpa len) (check_shared t gpa len)

let dma_write t ~gpa data =
  Result.map
    (fun () -> Hw.Phys_mem.write_bytes t.mem gpa data)
    (check_shared t gpa (Bytes.length data))

let blocked_dma_count t = t.blocked
