(** The untrusted host hypervisor (KVM-like). It emulates vmcalls (cpuid,
    port I/O, MMIO), queues interrupt injections, and — because it is a
    potential attacker in the threat model — records everything the guest
    ever discloses to it, so tests can assert that client plaintext never
    crosses this boundary. *)

type t

val create : unit -> t

val handler : t -> Tdx.Td_module.vmm_handler
(** To be installed via {!Tdx.Td_module.set_vmm}. *)

val set_cpuid : t -> leaf:int -> int64 -> unit
(** Configure the value returned for a cpuid leaf (default: a fixed
    vendor-style constant). *)

val inject_external_interrupt : t -> vector:int -> unit
(** Queue a device/IPI interrupt for the guest. *)

val pending_interrupt : t -> int option
(** Peek at the next queued vector. *)

val take_interrupt : t -> int option
(** Dequeue it. *)

(** {2 Attacker's notebook} *)

val observed : t -> bytes list
(** Every byte string the guest handed to the host (I/O writes, MMIO
    writes), newest last. *)

val observed_contains : t -> string -> bool
(** Substring search over everything observed — used by leakage tests. *)

val vmcall_log : t -> Tdx.Ghci.vmcall list
(** All vmcalls handled, newest last. *)
