lib/vmm/device.ml: Bytes Hw List Printf Result Tdx
