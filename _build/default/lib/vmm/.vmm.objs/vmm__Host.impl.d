lib/vmm/host.ml: Bytes Char Hashtbl Int64 List Option Queue String Tdx
