lib/vmm/host.mli: Tdx
