lib/vmm/device.mli: Hw Tdx
