(** Virtio-style host devices. Their DMA goes through the host IOMMU check:
    only *shared* guest frames are reachable (§2.1). A device that is asked
    to touch private memory gets an error — the AV1 device-retrieval attack
    surface Erebor closes by controlling MapGPA. *)

type t

val create : name:string -> mem:Hw.Phys_mem.t -> sept:Tdx.Sept.t -> t

val name : t -> string

val dma_read : t -> gpa:int -> len:int -> (bytes, string) result
(** Fails if any touched frame is private (or out of range). *)

val dma_write : t -> gpa:int -> bytes -> (unit, string) result

val blocked_dma_count : t -> int
(** How many DMA attempts the IOMMU rejected. *)
