(** Hardware faults and exception vectors raised by the simulated CPU. *)

type access_kind = Read | Write | Execute

type page_fault_info = {
  addr : int;            (** Faulting virtual address. *)
  kind : access_kind;
  user : bool;           (** Access originated in user mode. *)
  present : bool;        (** Translation present (protection fault) or not. *)
  pkey_violation : bool; (** Denied by a protection key. *)
}

type t =
  | General_protection of string
      (** #GP — e.g. a privileged instruction from user mode. *)
  | Page_fault of page_fault_info  (** #PF *)
  | Control_protection of string
      (** #CP — CET violation (missing endbr64, shadow-stack mismatch). *)
  | Virtualization_exception of int
      (** #VE with the TDX exit reason that triggered it. *)
  | Invalid_opcode of string       (** #UD *)

exception Fault of t

val raise_fault : t -> 'a

val vector : t -> int
(** x86 exception vector: #GP 13, #PF 14, #VE 20, #CP 21, #UD 6. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
