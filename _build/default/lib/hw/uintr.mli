(** User interrupts (UINTR): the senduipi path a malicious sandbox could use
    to signal attacker processes without a privilege transition (AV3). The
    monitor defeats it by clearing IA32_UINTR_TT.valid before entering a
    sandbox (§6.2, step 4 in Fig. 7). *)

type send_result =
  | Delivered of int  (** Target table slot that received the interrupt. *)
  | Faulted of Fault.t

val senduipi : msr:Msr.t -> slot:int -> send_result
(** Attempt a user-interrupt send on a core whose MSR file is [msr]. Sending
    with an invalid target table raises #GP, exactly the behaviour the
    monitor relies on. *)
