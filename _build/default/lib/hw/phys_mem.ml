let page_size = 4096
let page_shift = 12

type t = {
  frames : int;
  pages : (int, bytes) Hashtbl.t; (* pfn -> backing bytes, allocated on first write *)
}

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  { frames; pages = Hashtbl.create 4096 }

let frames t = t.frames
let size_bytes t = t.frames * page_size
let pfn_of_addr addr = addr lsr page_shift
let addr_of_pfn pfn = pfn lsl page_shift
let page_offset addr = addr land (page_size - 1)
let valid_pfn t pfn = pfn >= 0 && pfn < t.frames

let check_addr t addr =
  if addr < 0 || pfn_of_addr addr >= t.frames then
    invalid_arg (Printf.sprintf "Phys_mem: address 0x%x out of range" addr)

let backing t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | Some b -> b
  | None ->
      let b = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages pfn b;
      b

let read_u8 t addr =
  check_addr t addr;
  match Hashtbl.find_opt t.pages (pfn_of_addr addr) with
  | None -> 0
  | Some b -> Char.code (Bytes.get b (page_offset addr))

let write_u8 t addr v =
  check_addr t addr;
  Bytes.set (backing t (pfn_of_addr addr)) (page_offset addr) (Char.chr (v land 0xff))

let read_u64 t addr =
  check_addr t addr;
  if page_offset addr > page_size - 8 then
    invalid_arg "Phys_mem.read_u64: crosses page boundary";
  match Hashtbl.find_opt t.pages (pfn_of_addr addr) with
  | None -> 0L
  | Some b -> Bytes.get_int64_le b (page_offset addr)

let write_u64 t addr v =
  check_addr t addr;
  if page_offset addr > page_size - 8 then
    invalid_arg "Phys_mem.write_u64: crosses page boundary";
  Bytes.set_int64_le (backing t (pfn_of_addr addr)) (page_offset addr) v

let read_bytes t addr len =
  if len < 0 then invalid_arg "Phys_mem.read_bytes: negative length";
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let a = addr + !copied in
    check_addr t a;
    let off = page_offset a in
    let chunk = min (page_size - off) (len - !copied) in
    (match Hashtbl.find_opt t.pages (pfn_of_addr a) with
    | None -> Bytes.fill out !copied chunk '\000'
    | Some b -> Bytes.blit b off out !copied chunk);
    copied := !copied + chunk
  done;
  out

let write_bytes t addr data =
  let len = Bytes.length data in
  let copied = ref 0 in
  while !copied < len do
    let a = addr + !copied in
    check_addr t a;
    let off = page_offset a in
    let chunk = min (page_size - off) (len - !copied) in
    Bytes.blit data !copied (backing t (pfn_of_addr a)) off chunk;
    copied := !copied + chunk
  done

let zero_page t pfn =
  if not (valid_pfn t pfn) then invalid_arg "Phys_mem.zero_page: bad pfn";
  match Hashtbl.find_opt t.pages pfn with
  | None -> ()
  | Some b -> Bytes.fill b 0 page_size '\000'

let page_is_backed t pfn = Hashtbl.mem t.pages pfn
let backed_count t = Hashtbl.length t.pages
