(** Protection Keys for Supervisor pages (Intel PKS, §2.3 of the paper).

    IA32_PKRS holds two bits per key: AD (access disable) and WD (write
    disable). PKS applies only to supervisor data accesses to supervisor
    (U/S = 0) pages when CR4.PKS is set; it never restricts instruction
    fetches. *)

type rights = { access_disable : bool; write_disable : bool }

val allow_all : rights
val read_only : rights     (** WD set. *)
val no_access : rights     (** AD set. *)

val encode : rights array -> int64
(** [encode rights] packs rights for keys 0..15 (array length 16) into a
    PKRS value. *)

val decode : int64 -> rights array

val rights_of : pkrs:int64 -> key:int -> rights
(** Rights for one key; [key] must be 0–15. *)

val set_key : pkrs:int64 -> key:int -> rights -> int64
(** Functional update of one key's rights. *)

val permits : pkrs:int64 -> key:int -> write:bool -> bool
(** Whether a supervisor data access is allowed under [pkrs]. *)
