(** Four-level page tables stored *in* simulated physical memory, so that
    write-protecting page-table pages (the Nested Kernel discipline Erebor
    follows, §5.2) is enforced by the same access checks as any other store.

    Only 4 KiB leaf mappings exist: the paper's prototype disables huge pages
    to keep PKS granularity simple, and so do we. Virtual addresses are
    48-bit (9+9+9+12). *)

type walk_result = {
  pte : Pte.t;           (** Leaf entry. *)
  pte_addr : int;        (** Physical address of the leaf entry. *)
  user : bool;           (** U/S ANDed across all levels. *)
  writable : bool;       (** R/W ANDed across all levels. *)
  nx : bool;             (** NX ORed across all levels. *)
  huge : bool;           (** Leaf is a 2 MiB page-directory entry. *)
  pfn : int;             (** Frame resolved for the walked address. *)
}

val split : int -> int * int * int * int
(** [split vaddr] is the four 9-bit indices (PML4, PDPT, PD, PT). *)

val page_base : int -> int
(** Round a virtual address down to its page. *)

val walk : Phys_mem.t -> root_pfn:int -> int -> walk_result option
(** [walk mem ~root_pfn vaddr] follows the tree; [None] if any level is
    non-present. *)

val leaf_addr : Phys_mem.t -> root_pfn:int -> int -> int option
(** Physical address of the leaf PTE slot for [vaddr], if all intermediate
    levels are present (the slot itself may hold a non-present entry). *)

type writer = pte_addr:int -> Pte.t -> unit
(** How PTE stores reach memory. The native kernel writes directly; under
    Erebor the callback is an EMC into the monitor. This indirection *is* the
    paper's kernel instrumentation. *)

val map :
  Phys_mem.t ->
  write_pte:writer ->
  alloc_ptp:(unit -> int) ->
  root_pfn:int ->
  vaddr:int ->
  Pte.t ->
  unit
(** Install a leaf mapping, allocating intermediate page-table pages with
    [alloc_ptp] (which must return zeroed frames) as needed. Intermediate
    entries are created present/writable/user; leaves carry real policy. *)

val huge_page_size : int
(** 2 MiB. *)

val map_huge :
  Phys_mem.t ->
  write_pte:writer ->
  alloc_ptp:(unit -> int) ->
  root_pfn:int ->
  vaddr:int ->
  Pte.t ->
  unit
(** Install a 2 MiB leaf at the page-directory level. Both the virtual
    address and the frame must be 2 MiB-aligned. *)

val prepare_leaf :
  Phys_mem.t -> write_pte:writer -> alloc_ptp:(unit -> int) -> root_pfn:int ->
  vaddr:int -> int
(** Ensure all intermediate levels exist (allocating as needed) and return
    the physical address of the leaf slot *without* writing it — the
    building block for batched leaf installation. *)

val unmap : Phys_mem.t -> write_pte:writer -> root_pfn:int -> vaddr:int -> unit
(** Clear the leaf entry; no-op if the mapping doesn't exist. *)

val update :
  Phys_mem.t -> write_pte:writer -> root_pfn:int -> vaddr:int -> (Pte.t -> Pte.t) -> bool
(** Read-modify-write the leaf entry for [vaddr]; [false] when unmapped. *)
