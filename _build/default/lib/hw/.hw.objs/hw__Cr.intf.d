lib/hw/cr.mli:
