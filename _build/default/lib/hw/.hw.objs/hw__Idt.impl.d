lib/hw/idt.ml: Array Fault Printf
