lib/hw/uintr.ml: Fault Int64 Msr
