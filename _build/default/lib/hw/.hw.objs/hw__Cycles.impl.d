lib/hw/cycles.ml:
