lib/hw/access.mli: Fault
