lib/hw/page_table.ml: List Phys_mem Pte
