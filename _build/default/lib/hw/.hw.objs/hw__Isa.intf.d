lib/hw/isa.mli: Format
