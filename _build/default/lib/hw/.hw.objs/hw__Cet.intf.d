lib/hw/cet.mli: Fault
