lib/hw/cet.ml: Fault Int64 List Msr Printf
