lib/hw/phys_mem.ml: Bytes Char Hashtbl Printf
