lib/hw/page_table.mli: Phys_mem Pte
