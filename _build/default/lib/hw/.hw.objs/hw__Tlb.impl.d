lib/hw/tlb.ml: Hashtbl Phys_mem
