lib/hw/msr.mli:
