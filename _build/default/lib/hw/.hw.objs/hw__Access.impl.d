lib/hw/access.ml: Fault Pks
