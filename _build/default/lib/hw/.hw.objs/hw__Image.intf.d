lib/hw/image.mli:
