lib/hw/fault.ml: Fmt
