lib/hw/cpu.mli: Access Apic Cet Cr Cycles Fault Idt Msr Phys_mem Tlb
