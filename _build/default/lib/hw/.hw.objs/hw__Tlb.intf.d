lib/hw/tlb.mli:
