lib/hw/apic.mli: Cycles
