lib/hw/cycles.mli:
