lib/hw/idt.mli:
