lib/hw/pks.ml: Array Int64
