lib/hw/apic.ml: Cycles
