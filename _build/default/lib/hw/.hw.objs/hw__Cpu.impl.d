lib/hw/cpu.ml: Access Apic Array Bytes Cet Cr Cycles Fault Idt Int64 Msr Page_table Phys_mem Pte Tlb
