lib/hw/image.ml: Buffer Bytes Char List String
