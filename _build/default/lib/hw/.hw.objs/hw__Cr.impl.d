lib/hw/cr.ml: Int64
