lib/hw/pks.mli:
