lib/hw/isa.ml: Bytes Char Fmt List Option
