lib/hw/uintr.mli: Fault Msr
