lib/hw/pte.ml: Fmt Int64
