lib/hw/pte.mli: Format
