lib/hw/msr.ml: Hashtbl Int64 List Option
