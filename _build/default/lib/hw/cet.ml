let ibt_enabled s_cet = not (Int64.equal (Int64.logand s_cet Msr.s_cet_ibt_bit) 0L)
let sst_enabled s_cet = not (Int64.equal (Int64.logand s_cet Msr.s_cet_shstk_bit) 0L)

let check_branch ~s_cet ~endbr_at ~target =
  if ibt_enabled s_cet && not (endbr_at target) then
    Error (Fault.Control_protection (Printf.sprintf "indirect branch to 0x%x: no endbr64" target))
  else Ok ()

type shadow_stack = {
  base : int;
  mutable frames : int list;
  mutable busy : bool; (* token held by some core *)
}

let create_stack ~base = { base; frames = []; busy = false }
let stack_base s = s.base

type t = { mutable active : shadow_stack option }

let create () = { active = None }

let activate t stack =
  if stack.busy then
    Error (Fault.Control_protection (Printf.sprintf "shadow stack 0x%x token busy" stack.base))
  else begin
    (match t.active with Some prev -> prev.busy <- false | None -> ());
    stack.busy <- true;
    t.active <- Some stack;
    Ok ()
  end

let deactivate t =
  match t.active with
  | None -> ()
  | Some s ->
      s.busy <- false;
      t.active <- None

let current t = t.active

let on_call ~s_cet t ~ret_addr =
  if sst_enabled s_cet then
    match t.active with
    | Some stack -> stack.frames <- ret_addr :: stack.frames
    | None -> ()

let on_ret ~s_cet t ~ret_addr =
  if not (sst_enabled s_cet) then Ok ()
  else
    match t.active with
    | None -> Ok ()
    | Some stack -> (
        match stack.frames with
        | [] -> Error (Fault.Control_protection "shadow stack underflow")
        | saved :: rest ->
            if saved = ret_addr then begin
              stack.frames <- rest;
              Ok ()
            end
            else
              Error
                (Fault.Control_protection
                   (Printf.sprintf "return address 0x%x != shadow copy 0x%x" ret_addr saved)))

let depth s = List.length s.frames
