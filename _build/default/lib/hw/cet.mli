(** Control-flow Enforcement Technology (§2.2): forward-edge indirect-branch
    tracking (IBT) and backward-edge shadow stacks (SST). Erebor's EMC gates
    depend on IBT to force every monitor entry through the single endbr64 at
    the gate start, and on SST to keep returns from being redirected into
    monitor code. *)

(** {2 Indirect-branch tracking} *)

val check_branch :
  s_cet:int64 -> endbr_at:(int -> bool) -> target:int -> (unit, Fault.t) result
(** [check_branch ~s_cet ~endbr_at ~target] models an indirect [call]/[jmp]:
    when IBT is enabled in [s_cet] and [target] does not start with endbr64,
    the result is a #CP fault. *)

(** {2 Shadow stacks} *)

type shadow_stack
(** A kernel shadow stack region with its unique activation token
    (per-logical-core exclusivity, §2.2). *)

val create_stack : base:int -> shadow_stack
(** [base] is the stack's address, used only for identification. *)

val stack_base : shadow_stack -> int

type t
(** Per-core shadow-stack engine. *)

val create : unit -> t

val activate : t -> shadow_stack -> (unit, Fault.t) result
(** Claim a stack's token for this core. #CP if the token is already held by
    another core. *)

val deactivate : t -> unit
(** Release the current stack (e.g. before a context switch). *)

val current : t -> shadow_stack option

val on_call : s_cet:int64 -> t -> ret_addr:int -> unit
(** Push the return address when SST is enabled and a stack is active. *)

val on_ret : s_cet:int64 -> t -> ret_addr:int -> (unit, Fault.t) result
(** Verify the return address against the shadow copy; #CP on mismatch or
    underflow. A no-op when SST is disabled. *)

val depth : shadow_stack -> int
