(** Local APIC timer: fires {!Idt.vec_timer} every [period] cycles of the
    virtual clock. The machine layer polls {!pending} at event boundaries
    (interrupts in this simulation are delivered between instructions, as on
    real hardware). *)

type t

val create : Cycles.clock -> period:int -> t
(** [period] in cycles; the paper's guest uses a 250 Hz-ish tick. *)

val period : t -> int
val set_period : t -> int -> unit

val pending : t -> bool
(** Whether a timer interrupt is due at the current clock value. *)

val deadline : t -> int
(** Absolute clock value of the next tick. *)

val acknowledge : t -> unit
(** Consume the pending interrupt and arm the next deadline. Skips ahead if
    multiple periods elapsed (ticks don't queue up). *)

val fired_count : t -> int
(** Total timer interrupts delivered (Table 6's #Timer). *)
