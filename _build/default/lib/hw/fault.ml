type access_kind = Read | Write | Execute

type page_fault_info = {
  addr : int;
  kind : access_kind;
  user : bool;
  present : bool;
  pkey_violation : bool;
}

type t =
  | General_protection of string
  | Page_fault of page_fault_info
  | Control_protection of string
  | Virtualization_exception of int
  | Invalid_opcode of string

exception Fault of t

let raise_fault f = raise (Fault f)

let vector = function
  | Invalid_opcode _ -> 6
  | General_protection _ -> 13
  | Page_fault _ -> 14
  | Virtualization_exception _ -> 20
  | Control_protection _ -> 21

let pp_kind fmt = function
  | Read -> Fmt.string fmt "read"
  | Write -> Fmt.string fmt "write"
  | Execute -> Fmt.string fmt "execute"

let pp fmt = function
  | General_protection why -> Fmt.pf fmt "#GP(%s)" why
  | Page_fault { addr; kind; user; present; pkey_violation } ->
      Fmt.pf fmt "#PF(addr=0x%x %a %s%s%s)" addr pp_kind kind
        (if user then "user" else "supervisor")
        (if present then " protection" else " not-present")
        (if pkey_violation then " pkey" else "")
  | Control_protection why -> Fmt.pf fmt "#CP(%s)" why
  | Virtualization_exception reason -> Fmt.pf fmt "#VE(reason=%d)" reason
  | Invalid_opcode why -> Fmt.pf fmt "#UD(%s)" why

let to_string f = Fmt.str "%a" pp f
