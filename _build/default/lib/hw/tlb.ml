type entry = { pfn : int; user : bool; writable : bool; nx : bool; pkey : int }

type t = {
  table : (int, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let vpn vaddr = vaddr lsr Phys_mem.page_shift

let create () = { table = Hashtbl.create 1024; hits = 0; misses = 0 }

let lookup t vaddr =
  match Hashtbl.find_opt t.table (vpn vaddr) with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t vaddr e = Hashtbl.replace t.table (vpn vaddr) e
let flush_page t vaddr = Hashtbl.remove t.table (vpn vaddr)
let flush_all t = Hashtbl.reset t.table
let hits t = t.hits
let misses t = t.misses
let entries t = Hashtbl.length t.table
