type t = {
  clock : Cycles.clock;
  mutable period : int;
  mutable deadline : int;
  mutable fired : int;
}

let create clock ~period =
  if period <= 0 then invalid_arg "Apic.create: period must be positive";
  { clock; period; deadline = Cycles.now clock + period; fired = 0 }

let period t = t.period

let set_period t p =
  if p <= 0 then invalid_arg "Apic.set_period: period must be positive";
  t.period <- p;
  t.deadline <- Cycles.now t.clock + p

let pending t = Cycles.now t.clock >= t.deadline
let deadline t = t.deadline

let acknowledge t =
  if pending t then begin
    t.fired <- t.fired + 1;
    let now = Cycles.now t.clock in
    (* Re-arm relative to now: missed periods coalesce into one interrupt. *)
    t.deadline <- now + t.period
  end

let fired_count t = t.fired
