let vectors = 256

let vec_ud = 6
let vec_gp = 13
let vec_pf = 14
let vec_ve = 20
let vec_cp = 21
let vec_timer = 32
let vec_ipi = 33
let vec_device = 34

type entry = { present : bool; handler : int }

type t = entry array

let absent = { present = false; handler = 0 }

let create () = Array.make vectors absent

let check_vector v = if v < 0 || v >= vectors then invalid_arg "Idt: bad vector"

let set t v ~handler =
  check_vector v;
  t.(v) <- { present = true; handler }

let clear t v =
  check_vector v;
  t.(v) <- absent

let get t v =
  check_vector v;
  t.(v)

let copy t = Array.copy t

let deliver t v =
  check_vector v;
  let e = t.(v) in
  if not e.present then
    Fault.raise_fault (Fault.General_protection (Printf.sprintf "IDT vector %d not present" v))
  else e.handler
