(** Interrupt descriptor table. Handlers are code addresses in the simulated
    address space; the machine layer maps them to OCaml closures. Installing
    a table (lidt) is a sensitive instruction (Table 2) — under Erebor only
    the monitor does it, which is how exits get interposed (§6.2). *)

val vectors : int (** 256. *)

(** Standard vectors used by the simulation. *)

val vec_ud : int      (** 6 *)
val vec_gp : int      (** 13 *)
val vec_pf : int      (** 14 *)
val vec_ve : int      (** 20 *)
val vec_cp : int      (** 21 *)
val vec_timer : int   (** 32 — APIC timer. *)
val vec_ipi : int     (** 33 — inter-processor interrupt. *)
val vec_device : int  (** 34 — external device. *)

type entry = { present : bool; handler : int }

type t

val create : unit -> t
(** All vectors absent. *)

val set : t -> int -> handler:int -> unit
val clear : t -> int -> unit
val get : t -> int -> entry
val copy : t -> t

val deliver : t -> int -> int
(** [deliver t vector] is the handler address; raises
    [Fault.Fault (General_protection _)] when the vector is absent. *)
