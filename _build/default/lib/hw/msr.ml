type t = (int, int64) Hashtbl.t

let ia32_lstar = 0xC0000082
let ia32_pkrs = 0x6E1
let ia32_s_cet = 0x6A2
let ia32_pl0_ssp = 0x6A4
let ia32_uintr_tt = 0x985
let ia32_efer = 0xC0000080

let s_cet_ibt_bit = 4L      (* bit 2: ENDBR_EN *)
let s_cet_shstk_bit = 1L    (* bit 0: SH_STK_EN *)
let uintr_tt_valid_bit = 1L

let create () : t = Hashtbl.create 16

let read t idx = Option.value ~default:0L (Hashtbl.find_opt t idx)

let write t idx v =
  if Int64.equal v 0L then Hashtbl.remove t idx else Hashtbl.replace t idx v

let snapshot t = List.of_seq (Hashtbl.to_seq t)
