type walk_result = {
  pte : Pte.t;
  pte_addr : int;
  user : bool;
  writable : bool;
  nx : bool;
  huge : bool;
  pfn : int; (* resolved for the exact vaddr (huge pages span 512 frames) *)
}

let split vaddr =
  let idx n = (vaddr lsr (12 + (9 * n))) land 0x1ff in
  (idx 3, idx 2, idx 1, idx 0)

let page_base vaddr = vaddr land lnot (Phys_mem.page_size - 1)

type writer = pte_addr:int -> Pte.t -> unit

let entry_addr table_pfn index = Phys_mem.addr_of_pfn table_pfn + (8 * index)

let walk mem ~root_pfn vaddr =
  let i4, i3, i2, i1 = split vaddr in
  let rec descend pfn indices user writable nx =
    match indices with
    | [] -> assert false
    | [ leaf_idx ] ->
        let pte_addr = entry_addr pfn leaf_idx in
        let pte = Phys_mem.read_u64 mem pte_addr in
        if not (Pte.present pte) then None
        else
          Some
            {
              pte;
              pte_addr;
              user = user && Pte.user pte;
              writable = writable && Pte.writable pte;
              nx = nx || Pte.nx pte;
              huge = false;
              pfn = Pte.pfn pte;
            }
    | idx :: rest ->
        let pte_addr = entry_addr pfn idx in
        let e = Phys_mem.read_u64 mem pte_addr in
        if not (Pte.present e) then None
        else if Pte.huge e && List.length rest = 1 then
          (* 2 MiB leaf at the page-directory level. *)
          Some
            {
              pte = e;
              pte_addr;
              user = user && Pte.user e;
              writable = writable && Pte.writable e;
              nx = nx || Pte.nx e;
              huge = true;
              pfn = Pte.pfn e + i1;
            }
        else
          descend (Pte.pfn e) rest (user && Pte.user e) (writable && Pte.writable e)
            (nx || Pte.nx e)
  in
  descend root_pfn [ i4; i3; i2; i1 ] true true false

let leaf_addr mem ~root_pfn vaddr =
  let i4, i3, i2, i1 = split vaddr in
  let rec descend pfn = function
    | [] -> assert false
    | [ leaf_idx ] -> Some (entry_addr pfn leaf_idx)
    | idx :: rest ->
        let e = Phys_mem.read_u64 mem (entry_addr pfn idx) in
        if not (Pte.present e) then None else descend (Pte.pfn e) rest
  in
  descend root_pfn [ i4; i3; i2; i1 ]

let intermediate_flags = { Pte.default_flags with user = true }

let map mem ~write_pte ~alloc_ptp ~root_pfn ~vaddr pte =
  let i4, i3, i2, i1 = split vaddr in
  let rec descend pfn = function
    | [] -> assert false
    | [ leaf_idx ] -> write_pte ~pte_addr:(entry_addr pfn leaf_idx) pte
    | idx :: rest ->
        let slot = entry_addr pfn idx in
        let e = Phys_mem.read_u64 mem slot in
        let next_pfn =
          if Pte.present e then Pte.pfn e
          else begin
            let fresh = alloc_ptp () in
            write_pte ~pte_addr:slot (Pte.make ~pfn:fresh intermediate_flags);
            fresh
          end
        in
        descend next_pfn rest
  in
  descend root_pfn [ i4; i3; i2; i1 ]

let huge_page_size = 512 * Phys_mem.page_size

let map_huge mem ~write_pte ~alloc_ptp ~root_pfn ~vaddr pte =
  if vaddr land (huge_page_size - 1) <> 0 then
    invalid_arg "Page_table.map_huge: vaddr must be 2MiB-aligned";
  if Pte.pfn pte land 0x1ff <> 0 then
    invalid_arg "Page_table.map_huge: frame must be 2MiB-aligned";
  let i4, i3, i2, _ = split vaddr in
  let rec descend pfn = function
    | [] -> assert false
    | [ pd_idx ] -> write_pte ~pte_addr:(entry_addr pfn pd_idx) (Pte.set_huge pte true)
    | idx :: rest ->
        let slot = entry_addr pfn idx in
        let e = Phys_mem.read_u64 mem slot in
        let next_pfn =
          if Pte.present e then Pte.pfn e
          else begin
            let fresh = alloc_ptp () in
            write_pte ~pte_addr:slot (Pte.make ~pfn:fresh intermediate_flags);
            fresh
          end
        in
        descend next_pfn rest
  in
  descend root_pfn [ i4; i3; i2 ]

let prepare_leaf mem ~write_pte ~alloc_ptp ~root_pfn ~vaddr =
  let i4, i3, i2, i1 = split vaddr in
  let rec descend pfn = function
    | [] -> assert false
    | [ leaf_idx ] -> entry_addr pfn leaf_idx
    | idx :: rest ->
        let slot = entry_addr pfn idx in
        let e = Phys_mem.read_u64 mem slot in
        let next_pfn =
          if Pte.present e then Pte.pfn e
          else begin
            let fresh = alloc_ptp () in
            write_pte ~pte_addr:slot (Pte.make ~pfn:fresh intermediate_flags);
            fresh
          end
        in
        descend next_pfn rest
  in
  descend root_pfn [ i4; i3; i2; i1 ]

let unmap mem ~write_pte ~root_pfn ~vaddr =
  match leaf_addr mem ~root_pfn vaddr with
  | None -> ()
  | Some pte_addr -> write_pte ~pte_addr Pte.empty

let update mem ~write_pte ~root_pfn ~vaddr f =
  match leaf_addr mem ~root_pfn vaddr with
  | None -> false
  | Some pte_addr ->
      let pte = Phys_mem.read_u64 mem pte_addr in
      if not (Pte.present pte) then false
      else begin
        write_pte ~pte_addr (f pte);
        true
      end
