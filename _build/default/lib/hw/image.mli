(** A minimal ELF-like binary image format for the guest kernel and the
    monitor. Erebor's second boot stage parses these with its own loader and
    byte-scans every *executable* section for sensitive instructions before
    relocating and booting the kernel (§5.1). *)

type section = {
  name : string;
  vaddr : int;           (** Load virtual address. *)
  executable : bool;
  writable : bool;
  data : bytes;
}

type t = {
  entry : int;           (** Entry-point virtual address. *)
  sections : section list;
}

val magic : string
(** "EREB1". *)

val serialize : t -> bytes
(** Flat wire encoding (magic, entry, section table, payloads). *)

val parse : bytes -> (t, string) result
(** Strict parser: rejects bad magic, truncated tables, overlapping or
    out-of-order payloads, and non-printable section names. *)

val executable_sections : t -> section list

val find_section : t -> string -> section option

val total_size : t -> int
(** Sum of section payload sizes. *)
