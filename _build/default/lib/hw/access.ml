type ctx = {
  user_mode : bool;
  wp : bool;
  smep : bool;
  smap : bool;
  pks : bool;
  ac : bool;
  pkrs : int64;
}

type translation = { user : bool; writable : bool; nx : bool; pkey : int }

let pf ~addr ~kind ~user ?(pkey = false) () =
  Error
    (Fault.Page_fault
       { Fault.addr; kind; user; present = true; pkey_violation = pkey })

let check ctx ~kind ~addr tr =
  let deny ?pkey () = pf ~addr ~kind ~user:ctx.user_mode ?pkey () in
  match kind with
  | Fault.Execute ->
      if tr.nx then deny ()
      else if ctx.user_mode then if tr.user then Ok () else deny ()
      else if tr.user && ctx.smep then deny () (* SMEP: no kernel exec of user pages *)
      else Ok ()
  | Fault.Read | Fault.Write -> (
      let write = kind = Fault.Write in
      if ctx.user_mode then
        if not tr.user then deny ()
        else if write && not tr.writable then deny ()
        else Ok ()
      else if tr.user then
        (* Supervisor touching a user page: SMAP unless AC is set. *)
        if ctx.smap && not ctx.ac then deny ()
        else if write && ctx.wp && not tr.writable then deny ()
        else Ok ()
      else begin
        (* Supervisor page: PKS applies to data accesses. *)
        let pks_ok =
          (not ctx.pks) || Pks.permits ~pkrs:ctx.pkrs ~key:tr.pkey ~write:false
        in
        if not pks_ok then deny ~pkey:true ()
        else if write then
          if ctx.pks && ctx.wp && not (Pks.permits ~pkrs:ctx.pkrs ~key:tr.pkey ~write:true)
          then deny ~pkey:true ()
          else if ctx.wp && not tr.writable then deny ()
          else Ok ()
        else Ok ()
      end)
