type section = {
  name : string;
  vaddr : int;
  executable : bool;
  writable : bool;
  data : bytes;
}

type t = { entry : int; sections : section list }

let magic = "EREB1"

let put_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put_u64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let serialize t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_u64 buf t.entry;
  put_u32 buf (List.length t.sections);
  List.iter
    (fun s ->
      put_u32 buf (String.length s.name);
      Buffer.add_string buf s.name;
      put_u64 buf s.vaddr;
      Buffer.add_char buf (if s.executable then '\001' else '\000');
      Buffer.add_char buf (if s.writable then '\001' else '\000');
      put_u32 buf (Bytes.length s.data);
      Buffer.add_bytes buf s.data)
    t.sections;
  Buffer.to_bytes buf

exception Bad of string

let parse b =
  let pos = ref 0 in
  let need n =
    if !pos + n > Bytes.length b then raise (Bad "truncated image");
    let p = !pos in
    pos := !pos + n;
    p
  in
  let get_u32 () =
    let p = need 4 in
    let v = ref 0 in
    for i = 3 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (p + i))
    done;
    !v
  in
  let get_u64 () =
    let p = need 8 in
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (p + i))
    done;
    !v
  in
  let get_str n =
    let p = need n in
    Bytes.sub_string b p n
  in
  let get_byte () =
    let p = need 1 in
    Char.code (Bytes.get b p)
  in
  try
    if get_str (String.length magic) <> magic then raise (Bad "bad magic");
    let entry = get_u64 () in
    let count = get_u32 () in
    if count > 1024 then raise (Bad "unreasonable section count");
    let sections =
      List.init count (fun _ ->
          let name_len = get_u32 () in
          if name_len > 255 then raise (Bad "section name too long");
          let name = get_str name_len in
          String.iter
            (fun c -> if Char.code c < 0x20 || Char.code c > 0x7e then raise (Bad "bad section name"))
            name;
          let vaddr = get_u64 () in
          let executable = get_byte () = 1 in
          let writable = get_byte () = 1 in
          let len = get_u32 () in
          let p = need len in
          { name; vaddr; executable; writable; data = Bytes.sub b p len })
    in
    if !pos <> Bytes.length b then raise (Bad "trailing bytes");
    (* Reject overlapping load ranges. *)
    let ranges =
      List.sort compare
        (List.filter_map
           (fun s ->
             if Bytes.length s.data = 0 then None
             else Some (s.vaddr, s.vaddr + Bytes.length s.data))
           sections)
    in
    let rec overlaps = function
      | (_, e1) :: ((s2, _) :: _ as rest) -> if e1 > s2 then true else overlaps rest
      | _ -> false
    in
    if overlaps ranges then raise (Bad "overlapping sections");
    Ok { entry; sections }
  with Bad msg -> Error msg

let executable_sections t = List.filter (fun s -> s.executable) t.sections
let find_section t name = List.find_opt (fun s -> s.name = name) t.sections
let total_size t = List.fold_left (fun acc s -> acc + Bytes.length s.data) 0 t.sections
