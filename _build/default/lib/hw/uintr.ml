type send_result = Delivered of int | Faulted of Fault.t

let senduipi ~msr ~slot =
  let tt = Msr.read msr Msr.ia32_uintr_tt in
  if Int64.equal (Int64.logand tt Msr.uintr_tt_valid_bit) 0L then
    Faulted (Fault.General_protection "senduipi: UINTR target table invalid")
  else if slot < 0 || slot > 63 then
    Faulted (Fault.General_protection "senduipi: bad slot")
  else Delivered slot
