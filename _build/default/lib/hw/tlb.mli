(** Per-core translation lookaside buffer. Caches leaf translations with
    their combined walk permissions; PKRS and CR4 feature bits are *not*
    cached — like hardware, they are consulted live on every access. Stale
    entries after a PTE change are a real hazard the OS must manage with
    explicit flushes. *)

type entry = {
  pfn : int;
  user : bool;
  writable : bool;
  nx : bool;
  pkey : int;
}

type t

val create : unit -> t

val lookup : t -> int -> entry option
(** [lookup t vaddr] by virtual page number. Counts hits/misses. *)

val insert : t -> int -> entry -> unit

val flush_page : t -> int -> unit
(** invlpg. *)

val flush_all : t -> unit
(** CR3 reload. *)

val hits : t -> int
val misses : t -> int
val entries : t -> int
