type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7

type instr =
  | Nop
  | Endbr
  | Mov_imm of reg * int
  | Load of reg * reg
  | Store of reg * reg
  | Add of reg * reg
  | Jmp of int
  | Call of int
  | Ret
  | Syscall
  | Iret
  | Cpuid
  | Clac
  | Senduipi of reg
  | Mov_cr of int * reg
  | Wrmsr
  | Stac
  | Lidt
  | Tdcall

let instr_size = 4

let op_nop = 0x00
let op_endbr = 0x01
let op_mov_imm = 0x02
let op_load = 0x03
let op_store = 0x04
let op_add = 0x05
let op_jmp = 0x06
let op_call = 0x07
let op_ret = 0x08
let op_syscall = 0x09
let op_iret = 0x0a
let op_cpuid = 0x0b
let op_clac = 0x0c
let op_senduipi = 0x0d
let op_mov_cr = 0xc0
let op_wrmsr = 0xc1
let op_stac = 0xc2
let op_lidt = 0xc4
let op_tdcall = 0xc5

let sensitive_opcode b = b >= 0xc0 && b <= 0xc7

let is_sensitive = function
  | Mov_cr _ | Wrmsr | Stac | Lidt | Tdcall -> true
  | Nop | Endbr | Mov_imm _ | Load _ | Store _ | Add _ | Jmp _ | Call _ | Ret
  | Syscall | Iret | Cpuid | Clac | Senduipi _ ->
      false

let reg_code = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5 | R6 -> 6 | R7 -> 7

let reg_of_code = function
  | 0 -> Some R0 | 1 -> Some R1 | 2 -> Some R2 | 3 -> Some R3
  | 4 -> Some R4 | 5 -> Some R5 | 6 -> Some R6 | 7 -> Some R7
  | _ -> None

(* Immediates are 14-bit signed, base-128 encoded across two operand bytes so
   that well-formed code never contains a byte >= 0x80. *)
let imm_range = 1 lsl 13

let encode_imm v =
  if v < -imm_range || v >= imm_range then invalid_arg "Isa: immediate out of 14-bit range";
  let u = v land 0x3fff in
  (u land 0x7f, (u lsr 7) land 0x7f)

let decode_imm lo hi =
  let u = lo lor (hi lsl 7) in
  if u >= imm_range then u - (2 * imm_range) else u

let encode instr =
  let b = Bytes.make instr_size '\000' in
  let set i v = Bytes.set b i (Char.chr (v land 0xff)) in
  (match instr with
  | Nop -> set 0 op_nop
  | Endbr -> set 0 op_endbr
  | Mov_imm (r, v) ->
      let lo, hi = encode_imm v in
      set 0 op_mov_imm;
      set 1 (reg_code r);
      set 2 lo;
      set 3 hi
  | Load (rd, rs) ->
      set 0 op_load;
      set 1 (reg_code rd);
      set 2 (reg_code rs)
  | Store (rd, rs) ->
      set 0 op_store;
      set 1 (reg_code rd);
      set 2 (reg_code rs)
  | Add (rd, rs) ->
      set 0 op_add;
      set 1 (reg_code rd);
      set 2 (reg_code rs)
  | Jmp off ->
      let lo, hi = encode_imm off in
      set 0 op_jmp;
      set 1 lo;
      set 2 hi
  | Call off ->
      let lo, hi = encode_imm off in
      set 0 op_call;
      set 1 lo;
      set 2 hi
  | Ret -> set 0 op_ret
  | Syscall -> set 0 op_syscall
  | Iret -> set 0 op_iret
  | Cpuid -> set 0 op_cpuid
  | Clac -> set 0 op_clac
  | Senduipi r ->
      set 0 op_senduipi;
      set 1 (reg_code r)
  | Mov_cr (cr, r) ->
      if cr <> 0 && cr <> 3 && cr <> 4 then invalid_arg "Isa: bad CR index";
      set 0 op_mov_cr;
      set 1 cr;
      set 2 (reg_code r)
  | Wrmsr -> set 0 op_wrmsr
  | Stac -> set 0 op_stac
  | Lidt -> set 0 op_lidt
  | Tdcall -> set 0 op_tdcall);
  b

let assemble instrs = Bytes.concat Bytes.empty (List.map encode instrs)

let decode b off =
  if off < 0 || off + instr_size > Bytes.length b then None
  else begin
    let byte i = Char.code (Bytes.get b (off + i)) in
    let reg i = reg_of_code (byte i) in
    let op = byte 0 in
    if op = op_nop then Some Nop
    else if op = op_endbr then Some Endbr
    else if op = op_mov_imm then
      Option.map (fun r -> Mov_imm (r, decode_imm (byte 2) (byte 3))) (reg 1)
    else if op = op_load then
      match (reg 1, reg 2) with Some a, Some b -> Some (Load (a, b)) | _ -> None
    else if op = op_store then
      match (reg 1, reg 2) with Some a, Some b -> Some (Store (a, b)) | _ -> None
    else if op = op_add then
      match (reg 1, reg 2) with Some a, Some b -> Some (Add (a, b)) | _ -> None
    else if op = op_jmp then Some (Jmp (decode_imm (byte 1) (byte 2)))
    else if op = op_call then Some (Call (decode_imm (byte 1) (byte 2)))
    else if op = op_ret then Some Ret
    else if op = op_syscall then Some Syscall
    else if op = op_iret then Some Iret
    else if op = op_cpuid then Some Cpuid
    else if op = op_clac then Some Clac
    else if op = op_senduipi then Option.map (fun r -> Senduipi r) (reg 1)
    else if op = op_mov_cr then
      let cr = byte 1 in
      if cr = 0 || cr = 3 || cr = 4 then Option.map (fun r -> Mov_cr (cr, r)) (reg 2)
      else None
    else if op = op_wrmsr then Some Wrmsr
    else if op = op_stac then Some Stac
    else if op = op_lidt then Some Lidt
    else if op = op_tdcall then Some Tdcall
    else None
  end

let disassemble b =
  if Bytes.length b mod instr_size <> 0 then None
  else begin
    let n = Bytes.length b / instr_size in
    let rec go i acc =
      if i = n then Some (List.rev acc)
      else
        match decode b (i * instr_size) with
        | None -> None
        | Some instr -> go (i + 1) (instr :: acc)
    in
    go 0 []
  end

type violation = { offset : int; byte : int }

let scan b =
  let out = ref [] in
  for i = Bytes.length b - 1 downto 0 do
    let v = Char.code (Bytes.get b i) in
    if sensitive_opcode v then out := { offset = i; byte = v } :: !out
  done;
  !out

let pp_reg fmt r = Fmt.pf fmt "r%d" (reg_code r)

let pp_instr fmt = function
  | Nop -> Fmt.string fmt "nop"
  | Endbr -> Fmt.string fmt "endbr64"
  | Mov_imm (r, v) -> Fmt.pf fmt "mov %a, %d" pp_reg r v
  | Load (rd, rs) -> Fmt.pf fmt "load %a, [%a]" pp_reg rd pp_reg rs
  | Store (rd, rs) -> Fmt.pf fmt "store [%a], %a" pp_reg rd pp_reg rs
  | Add (rd, rs) -> Fmt.pf fmt "add %a, %a" pp_reg rd pp_reg rs
  | Jmp off -> Fmt.pf fmt "jmp %+d" off
  | Call off -> Fmt.pf fmt "call %+d" off
  | Ret -> Fmt.string fmt "ret"
  | Syscall -> Fmt.string fmt "syscall"
  | Iret -> Fmt.string fmt "iret"
  | Cpuid -> Fmt.string fmt "cpuid"
  | Clac -> Fmt.string fmt "clac"
  | Senduipi r -> Fmt.pf fmt "senduipi %a" pp_reg r
  | Mov_cr (cr, r) -> Fmt.pf fmt "mov %%cr%d, %a" cr pp_reg r
  | Wrmsr -> Fmt.string fmt "wrmsr"
  | Stac -> Fmt.string fmt "stac"
  | Lidt -> Fmt.string fmt "lidt"
  | Tdcall -> Fmt.string fmt "tdcall"
