type rights = { access_disable : bool; write_disable : bool }

let allow_all = { access_disable = false; write_disable = false }
let read_only = { access_disable = false; write_disable = true }
let no_access = { access_disable = true; write_disable = false }

let bits_of { access_disable; write_disable } =
  (if access_disable then 1 else 0) lor if write_disable then 2 else 0

let rights_of_bits b =
  { access_disable = b land 1 = 1; write_disable = b land 2 = 2 }

let encode rights =
  if Array.length rights <> 16 then invalid_arg "Pks.encode: need 16 keys";
  let v = ref 0L in
  for key = 15 downto 0 do
    v := Int64.logor (Int64.shift_left !v 2) (Int64.of_int (bits_of rights.(key)))
  done;
  !v

let decode pkrs =
  Array.init 16 (fun key ->
      rights_of_bits (Int64.to_int (Int64.logand (Int64.shift_right_logical pkrs (2 * key)) 3L)))

let rights_of ~pkrs ~key =
  if key < 0 || key > 15 then invalid_arg "Pks.rights_of: key out of range";
  rights_of_bits (Int64.to_int (Int64.logand (Int64.shift_right_logical pkrs (2 * key)) 3L))

let set_key ~pkrs ~key rights =
  if key < 0 || key > 15 then invalid_arg "Pks.set_key: key out of range";
  let cleared = Int64.logand pkrs (Int64.lognot (Int64.shift_left 3L (2 * key))) in
  Int64.logor cleared (Int64.shift_left (Int64.of_int (bits_of rights)) (2 * key))

let permits ~pkrs ~key ~write =
  let r = rights_of ~pkrs ~key in
  if r.access_disable then false else (not write) || not r.write_disable
