lib/erebor/mitigations.mli: Hw
