lib/erebor/monitor.ml: Array Bytes Fmt Fun Gate Hashtbl Hw Int64 Kernel List Mmu_guard Policy Scan Tdx
