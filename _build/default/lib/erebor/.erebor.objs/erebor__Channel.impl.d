lib/erebor/channel.ml: Array Bytes Char Crypto List Monitor Queue Tdx
