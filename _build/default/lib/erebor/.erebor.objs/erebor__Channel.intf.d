lib/erebor/channel.mli: Crypto Monitor Tdx
