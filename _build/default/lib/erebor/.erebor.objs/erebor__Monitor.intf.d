lib/erebor/monitor.mli: Gate Hw Kernel Mmu_guard Tdx
