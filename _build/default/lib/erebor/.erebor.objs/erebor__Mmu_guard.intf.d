lib/erebor/mmu_guard.mli: Hw
