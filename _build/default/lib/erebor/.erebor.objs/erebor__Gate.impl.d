lib/erebor/gate.ml: Bytes Fun Hw Int64 Policy
