lib/erebor/scan.mli: Format Hw
