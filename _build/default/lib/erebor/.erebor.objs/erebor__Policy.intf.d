lib/erebor/policy.mli: Format Hw
