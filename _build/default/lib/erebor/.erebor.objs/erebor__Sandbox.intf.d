lib/erebor/sandbox.mli: Hw Kernel Mitigations Monitor
