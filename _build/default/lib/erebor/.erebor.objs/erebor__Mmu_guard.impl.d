lib/erebor/mmu_guard.ml: Hashtbl Hw Kernel List Option Policy
