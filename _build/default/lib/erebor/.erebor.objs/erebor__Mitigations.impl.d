lib/erebor/mitigations.ml: Hw
