lib/erebor/sandbox.ml: Buffer Bytes Fun Hashtbl Hw Kernel List Mitigations Mmu_guard Monitor Option Printf
