lib/erebor/policy.ml: Fmt Hw
