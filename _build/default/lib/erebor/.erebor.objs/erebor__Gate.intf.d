lib/erebor/gate.mli: Hw
