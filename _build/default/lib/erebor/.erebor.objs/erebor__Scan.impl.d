lib/erebor/scan.ml: Fmt Hw List
