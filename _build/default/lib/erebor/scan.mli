(** Stage-two boot verification (§5.1): the monitor's ELF-style loader parses
    a kernel image and byte-scans every executable section for sensitive
    instruction encodings. Any hit — aligned or not — refuses the boot. *)

type violation = {
  section : string;
  offset : int;  (** Byte offset within the section. *)
  byte : int;    (** The offending opcode byte. *)
}

val verify_image : Hw.Image.t -> (unit, violation list) result
(** Scan all executable sections; [Ok ()] iff none contains a sensitive
    byte sequence. *)

val verify_bytes : section:string -> bytes -> (unit, violation list) result
(** Scan one blob (dynamic code: module loading, eBPF, text_poke — §7). *)

val pp_violation : Format.formatter -> violation -> unit
