type policy = {
  exit_rate_limit : int option;
  output_quantum : int option;
  flush_on_exit : bool;
}

let none = { exit_rate_limit = None; output_quantum = None; flush_on_exit = false }

let paranoid =
  {
    exit_rate_limit = Some 2000;
    output_quantum = Some 21_000_000 (* 10 ms at 2.1 GHz *);
    flush_on_exit = true;
  }

let cache_flush_cost = 9000 (* partial LLC + TLB eviction on each exit *)

type t = {
  clock : Hw.Cycles.clock;
  cpu : Hw.Cpu.t;
  policy : policy;
  mutable window_start : int;   (* beginning of the current 1 s window *)
  mutable window_exits : int;
  mutable exits : int;
  mutable stalls : int;
  mutable stall_cycles : int;
  mutable flushes : int;
}

let window = 2_100_000_000 (* one second of cycles *)

let create ~clock ~cpu policy =
  {
    clock;
    cpu;
    policy;
    window_start = Hw.Cycles.now clock;
    window_exits = 0;
    exits = 0;
    stalls = 0;
    stall_cycles = 0;
    flushes = 0;
  }

let policy t = t.policy

let roll_window t =
  let now = Hw.Cycles.now t.clock in
  if now - t.window_start >= window then begin
    t.window_start <- now - ((now - t.window_start) mod window);
    t.window_exits <- 0
  end

let on_sandbox_exit t =
  t.exits <- t.exits + 1;
  if t.policy.flush_on_exit then begin
    t.flushes <- t.flushes + 1;
    Hw.Cpu.flush_tlb t.cpu;
    Hw.Cycles.advance t.clock cache_flush_cost
  end;
  match t.policy.exit_rate_limit with
  | None -> ()
  | Some limit ->
      roll_window t;
      t.window_exits <- t.window_exits + 1;
      if t.window_exits > limit then begin
        (* Budget exhausted: park the sandbox until the window rolls. *)
        let now = Hw.Cycles.now t.clock in
        let wait = t.window_start + window - now in
        if wait > 0 then begin
          t.stalls <- t.stalls + 1;
          t.stall_cycles <- t.stall_cycles + wait;
          Hw.Cycles.advance t.clock wait
        end;
        roll_window t
      end

let release_output t =
  match t.policy.output_quantum with
  | None -> ()
  | Some quantum ->
      let now = Hw.Cycles.now t.clock in
      let rem = now mod quantum in
      if rem > 0 then begin
        t.stalls <- t.stalls + 1;
        t.stall_cycles <- t.stall_cycles + (quantum - rem);
        Hw.Cycles.advance t.clock (quantum - rem)
      end

let exits_seen t = t.exits
let stalls t = t.stalls
let stall_cycles t = t.stall_cycles
let flushes t = t.flushes
