type violation = { section : string; offset : int; byte : int }

let verify_bytes ~section data =
  match Hw.Isa.scan data with
  | [] -> Ok ()
  | hits ->
      Error (List.map (fun { Hw.Isa.offset; byte } -> { section; offset; byte }) hits)

let verify_image img =
  let violations =
    List.concat_map
      (fun s ->
        match verify_bytes ~section:s.Hw.Image.name s.Hw.Image.data with
        | Ok () -> []
        | Error vs -> vs)
      (Hw.Image.executable_sections img)
  in
  if violations = [] then Ok () else Error violations

let pp_violation fmt { section; offset; byte } =
  Fmt.pf fmt "%s+0x%x: sensitive byte 0x%02x" section offset byte
