(** Digital side/covert-channel mitigations (§11 of the paper — discussed as
    adoptable software heuristics, implemented here as a monitor extension):

    - {b exit rate limiting}: a sandbox exceeding its exit budget is stalled
      before resuming, collapsing exit-frequency covert channels;
    - {b quantized output intervals}: results are released only on fixed
      time boundaries, hiding processing-time variation;
    - {b flush on exit}: cache/TLB eviction at every sandbox exit, blunting
      Prime+Probe-style residue channels at a per-exit cost. *)

type policy = {
  exit_rate_limit : int option;
      (** Maximum sandbox exits per second; beyond it the monitor stalls. *)
  output_quantum : int option;
      (** Cycle grid on which output release is permitted. *)
  flush_on_exit : bool;
}

val none : policy
val paranoid : policy
(** 2000 exits/s cap, 10 ms output quantum, flush every exit. *)

type t

val create : clock:Hw.Cycles.clock -> cpu:Hw.Cpu.t -> policy -> t
val policy : t -> policy

val on_sandbox_exit : t -> unit
(** Apply per-exit mitigations: flush cost and, when the rate budget for
    the current one-second window is exhausted, a stall to the next
    window. *)

val release_output : t -> unit
(** Block (advance the clock) until the next output quantum boundary. *)

(** {2 Observability} *)

val exits_seen : t -> int
val stalls : t -> int
val stall_cycles : t -> int
val flushes : t -> int
