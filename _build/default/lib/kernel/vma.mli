(** Virtual memory areas of one address space: a sorted, non-overlapping set
    of regions with protections and a kind that the fault handler and
    Erebor's memory-declaration checks dispatch on. *)

type prot = { read : bool; write : bool; exec : bool }

val prot_rw : prot
val prot_r : prot
val prot_rx : prot
val prot_rwx : prot

type kind =
  | Anon                  (** Demand-zero heap / mmap memory. *)
  | Stack
  | File of string        (** Backed by an in-memory file. *)
  | Confined              (** Erebor sandbox confined memory (pinned). *)
  | Common                (** Erebor read-only shared region. *)

type region = { start : int; len : int; prot : prot; kind : kind }

val region_end : region -> int

type t

val empty : t
val add : t -> region -> (t, string) result
(** Fails on overlap, non-page-aligned bounds, or empty length. *)

val remove : t -> start:int -> t
(** Drop the region starting exactly at [start]; no-op when absent. *)

val find : t -> int -> region option
(** Region containing an address. *)

val iter : (region -> unit) -> t -> unit
val to_list : t -> region list
val count : t -> int

val total_bytes : t -> kind -> int
(** Sum of region sizes of one kind (confined/common accounting). *)

val find_gap : t -> hint:int -> len:int -> limit:int -> int option
(** Lowest page-aligned start >= [hint] where [len] bytes fit wholly below
    [limit] without overlapping an existing region. *)
