(** The guest virtual-address layout. 48-bit canonical-free addresses kept in
    native OCaml ints:

    {v
      0x0000_0000_1000 .. 0x0080_0000_0000   user space (progs, sandboxes)
      0x1000_0000_0000 .. +phys size         kernel direct map of all RAM
      0x2000_0000_0000 ..                    kernel text/data image
    v} *)

val user_base : int
val user_top : int
val direct_map_base : int
val kernel_text_base : int

val direct_map : int -> int
(** Kernel virtual address of a physical address. *)

val phys_of_direct_map : int -> int
(** Inverse of {!direct_map}; raises [Invalid_argument] outside the map. *)

val is_user_addr : int -> bool
val is_direct_map_addr : int -> bool

val page_align_up : int -> int
val page_align_down : int -> int
val pages_of_bytes : int -> int
(** Page count covering a byte size (rounded up). *)
