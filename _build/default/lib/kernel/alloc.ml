type t = {
  first_pfn : int;
  frames : int;
  bitmap : Bytes.t;          (* one byte per frame: 0 free, 1 used *)
  mutable cursor : int;      (* next-fit start index *)
  mutable used : int;
}

let create ~first_pfn ~frames =
  if frames <= 0 then invalid_arg "Alloc.create: frames must be positive";
  { first_pfn; frames; bitmap = Bytes.make frames '\000'; cursor = 0; used = 0 }

let first_pfn t = t.first_pfn
let total t = t.frames
let used t = t.used
let available t = t.frames - t.used

let taken t i = Bytes.get t.bitmap i <> '\000'

let take t i =
  Bytes.set t.bitmap i '\001';
  t.used <- t.used + 1

let alloc t =
  if t.used >= t.frames then None
  else begin
    let rec scan i remaining =
      if remaining = 0 then None
      else begin
        let i = if i >= t.frames then 0 else i in
        if taken t i then scan (i + 1) (remaining - 1)
        else begin
          take t i;
          t.cursor <- i + 1;
          Some (t.first_pfn + i)
        end
      end
    in
    scan t.cursor t.frames
  end

let alloc_zeroed t mem =
  match alloc t with
  | None -> None
  | Some pfn ->
      Hw.Phys_mem.zero_page mem pfn;
      Some pfn

let alloc_contig t n =
  if n <= 0 then invalid_arg "Alloc.alloc_contig: n must be positive";
  let rec find start =
    if start + n > t.frames then None
    else begin
      (* Find the last taken frame in the window, if any. *)
      let rec window i = if i = start + n then None else if taken t i then Some i else window (i + 1) in
      match window start with
      | Some blocker -> find (blocker + 1)
      | None ->
          for i = start to start + n - 1 do
            take t i
          done;
          Some (t.first_pfn + start)
    end
  in
  find 0

let index_of t pfn =
  let i = pfn - t.first_pfn in
  if i < 0 || i >= t.frames then invalid_arg "Alloc: pfn outside this allocator";
  i

let free t pfn =
  let i = index_of t pfn in
  if not (taken t i) then invalid_arg "Alloc.free: double free";
  Bytes.set t.bitmap i '\000';
  t.used <- t.used - 1

let is_allocated t pfn = taken t (index_of t pfn)
