type state = Runnable | Blocked | Dead

type kind = Normal | Sandboxed of int

type t = {
  tid : int;
  name : string;
  kind : kind;
  mutable state : state;
  mutable root_pfn : int;
  mutable vmas : Vma.t;
  mutable brk : int;
  mutable saved_regs : int64 array option;
  mutable cpu_cycles : int;
  mutable exit_code : int option;
  fds : (int, string) Hashtbl.t;
  mutable next_fd : int;
}

let make ~tid ~name ~kind ~root_pfn =
  {
    tid;
    name;
    kind;
    state = Runnable;
    root_pfn;
    vmas = Vma.empty;
    brk = Layout.user_base;
    saved_regs = None;
    cpu_cycles = 0;
    exit_code = None;
    fds = Hashtbl.create 8;
    next_fd = 3; (* 0,1,2 conventionally reserved *)
  }

let is_sandboxed t = match t.kind with Sandboxed _ -> true | Normal -> false
let sandbox_id t = match t.kind with Sandboxed id -> Some id | Normal -> None

let alloc_fd t path =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd path;
  fd

let path_of_fd t fd = Hashtbl.find_opt t.fds fd

let close_fd t fd =
  if Hashtbl.mem t.fds fd then begin
    Hashtbl.remove t.fds fd;
    true
  end
  else false

let kill t ~exit_code =
  t.state <- Dead;
  t.exit_code <- Some exit_code
