type special = { read : unit -> bytes; write : bytes -> unit }

type t = {
  files : (string, bytes ref) Hashtbl.t;
  specials : (string, special) Hashtbl.t;
}

let create () = { files = Hashtbl.create 64; specials = Hashtbl.create 8 }

let write_file t path data =
  match Hashtbl.find_opt t.files path with
  | Some r -> r := Bytes.copy data
  | None -> Hashtbl.replace t.files path (ref (Bytes.copy data))

let append_file t path data =
  match Hashtbl.find_opt t.files path with
  | Some r -> r := Bytes.cat !r data
  | None -> write_file t path data

let read_file t path = Option.map (fun r -> Bytes.copy !r) (Hashtbl.find_opt t.files path)

let exists t path = Hashtbl.mem t.files path || Hashtbl.mem t.specials path

let remove t path =
  if Hashtbl.mem t.files path then begin
    Hashtbl.remove t.files path;
    true
  end
  else false

let list t = List.sort compare (List.of_seq (Seq.map fst (Hashtbl.to_seq t.files)))

let file_size t path = Option.map (fun r -> Bytes.length !r) (Hashtbl.find_opt t.files path)

let register_special t path ~read ~write = Hashtbl.replace t.specials path { read; write }

let is_special t path = Hashtbl.mem t.specials path

let read_path t path =
  match Hashtbl.find_opt t.specials path with
  | Some s -> Some (s.read ())
  | None -> read_file t path

let write_path t path data =
  match Hashtbl.find_opt t.specials path with
  | Some s ->
      s.write data;
      true
  | None ->
      write_file t path data;
      true
