let user_base = 0x0000_0000_1000
let user_top = 0x0080_0000_0000
let direct_map_base = 0x1000_0000_0000
let kernel_text_base = 0x2000_0000_0000

let direct_map paddr = direct_map_base + paddr

let phys_of_direct_map vaddr =
  if vaddr < direct_map_base || vaddr >= kernel_text_base then
    invalid_arg "Layout.phys_of_direct_map: not a direct-map address";
  vaddr - direct_map_base

let is_user_addr addr = addr >= user_base && addr < user_top
let is_direct_map_addr addr = addr >= direct_map_base && addr < kernel_text_base

let page_align_up v = (v + Hw.Phys_mem.page_size - 1) land lnot (Hw.Phys_mem.page_size - 1)
let page_align_down v = v land lnot (Hw.Phys_mem.page_size - 1)
let pages_of_bytes n = (n + Hw.Phys_mem.page_size - 1) / Hw.Phys_mem.page_size
