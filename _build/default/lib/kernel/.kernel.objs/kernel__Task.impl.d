lib/kernel/task.ml: Hashtbl Layout Vma
