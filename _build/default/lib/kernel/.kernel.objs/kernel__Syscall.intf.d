lib/kernel/syscall.mli: Format Vma
