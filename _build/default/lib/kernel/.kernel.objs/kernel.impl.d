lib/kernel/kernel.ml: Alloc Array Bytes Fs Hashtbl Hw Layout List Option Printf Privops Queue Sched Syscall Task Tdx Vma
