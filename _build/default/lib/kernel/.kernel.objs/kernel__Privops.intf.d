lib/kernel/privops.mli: Hw Tdx
