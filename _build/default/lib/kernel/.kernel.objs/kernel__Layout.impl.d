lib/kernel/layout.ml: Hw
