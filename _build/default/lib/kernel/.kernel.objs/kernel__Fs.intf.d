lib/kernel/fs.mli:
