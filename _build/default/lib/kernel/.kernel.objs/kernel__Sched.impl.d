lib/kernel/sched.ml: Queue Task
