lib/kernel/kernel.mli: Alloc Fs Hashtbl Hw Layout Privops Queue Sched Syscall Task Tdx Vma
