lib/kernel/alloc.ml: Bytes Hw
