lib/kernel/vma.ml: Hw Layout List
