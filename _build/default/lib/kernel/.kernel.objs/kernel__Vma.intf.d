lib/kernel/vma.mli:
