lib/kernel/privops.ml: Array Bytes Fun Hw Layout Tdx
