lib/kernel/syscall.ml: Bytes Fmt Vma
