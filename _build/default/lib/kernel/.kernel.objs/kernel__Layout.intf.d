lib/kernel/layout.mli:
