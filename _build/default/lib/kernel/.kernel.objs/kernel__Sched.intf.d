lib/kernel/sched.mli: Task
