lib/kernel/fs.ml: Bytes Hashtbl List Option Seq
