lib/kernel/task.mli: Hashtbl Vma
