(** Physical-frame allocator over a pfn range: a bitmap with a next-fit
    cursor, plus contiguous allocation for the CMA-style reserved region the
    LibOS draws sandbox confined memory from (§7). *)

type t

val create : first_pfn:int -> frames:int -> t

val first_pfn : t -> int
val total : t -> int
val used : t -> int
val available : t -> int

val alloc : t -> int option
(** One free frame, or [None] when exhausted. *)

val alloc_zeroed : t -> Hw.Phys_mem.t -> int option
(** Allocate and scrub (page-table pages must start zeroed). *)

val alloc_contig : t -> int -> int option
(** [alloc_contig t n] is the first pfn of [n] physically-contiguous frames. *)

val free : t -> int -> unit
(** Raises [Invalid_argument] on double free or foreign pfn. *)

val is_allocated : t -> int -> bool
