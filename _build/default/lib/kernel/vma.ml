type prot = { read : bool; write : bool; exec : bool }

let prot_rw = { read = true; write = true; exec = false }
let prot_r = { read = true; write = false; exec = false }
let prot_rx = { read = true; write = false; exec = true }
let prot_rwx = { read = true; write = true; exec = true }

type kind = Anon | Stack | File of string | Confined | Common

type region = { start : int; len : int; prot : prot; kind : kind }

let region_end r = r.start + r.len

type t = region list (* sorted by start, non-overlapping *)

let empty = []

let page_aligned v = v land (Hw.Phys_mem.page_size - 1) = 0

let add t r =
  if r.len <= 0 then Error "empty region"
  else if not (page_aligned r.start && page_aligned r.len) then Error "unaligned region"
  else begin
    let overlapping other = r.start < region_end other && other.start < region_end r in
    if List.exists overlapping t then Error "overlapping region"
    else Ok (List.sort (fun a b -> compare a.start b.start) (r :: t))
  end

let remove t ~start = List.filter (fun r -> r.start <> start) t

let find t addr = List.find_opt (fun r -> addr >= r.start && addr < region_end r) t

let iter = List.iter
let to_list t = t
let count = List.length

let total_bytes t kind =
  List.fold_left (fun acc r -> if r.kind = kind then acc + r.len else acc) 0 t

let find_gap t ~hint ~len ~limit =
  let hint = Layout.page_align_up hint in
  let len = Layout.page_align_up len in
  (* Candidate starts: the hint itself and the end of every region. *)
  let candidates =
    hint :: List.filter_map (fun r -> if region_end r >= hint then Some (region_end r) else None) t
  in
  let fits start =
    start + len <= limit
    && not (List.exists (fun r -> start < region_end r && r.start < start + len) t)
  in
  List.sort compare candidates |> List.find_opt fits
