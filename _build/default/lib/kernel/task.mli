(** Kernel task (process/thread) state. Sandboxed programs are single
    address-space containers (§4.2): every task of a sandbox shares the same
    page-table root and VMA set. *)

type state = Runnable | Blocked | Dead

type kind =
  | Normal
  | Sandboxed of int  (** Erebor sandbox id. *)

type t = {
  tid : int;
  name : string;
  kind : kind;
  mutable state : state;
  mutable root_pfn : int;          (** PML4 frame of the address space. *)
  mutable vmas : Vma.t;
  mutable brk : int;               (** Program break for [brk]. *)
  mutable saved_regs : int64 array option;  (** Context saved while off-CPU. *)
  mutable cpu_cycles : int;        (** Accumulated on-CPU time. *)
  mutable exit_code : int option;
  fds : (int, string) Hashtbl.t;   (** fd -> path. *)
  mutable next_fd : int;
}

val make : tid:int -> name:string -> kind:kind -> root_pfn:int -> t

val is_sandboxed : t -> bool
val sandbox_id : t -> int option

val alloc_fd : t -> string -> int
val path_of_fd : t -> int -> string option
val close_fd : t -> int -> bool

val kill : t -> exit_code:int -> unit
(** Mark dead. *)
