(** The simulated TDX module: owner of the sEPT and the measurement state,
    gatekeeper for every tdcall, and the component that saves/scrubs guest
    context at exits so the host never sees guest registers (§2.1). *)

type vmcall_result =
  | V_int of int64
  | V_bytes of bytes
  | V_unit
  | V_error of string

type vmm_handler = Ghci.vmcall -> vmcall_result
(** Installed by the host VMM. *)

type t

val create :
  mem:Hw.Phys_mem.t -> clock:Hw.Cycles.clock -> hw_key:bytes -> t
(** A fresh TD covering all of [mem]; every frame starts private. *)

val sept : t -> Sept.t
val measurements : t -> Attest.measurements
val set_vmm : t -> vmm_handler -> unit

val measure_initial : t -> bytes -> unit
(** Extend MRTD with a boot component (firmware, monitor binary). Only legal
    before the first tdcall; raises [Invalid_argument] afterwards, modelling
    TD build finalization. *)

type tdcall_result =
  | Ok_int of int64
  | Ok_bytes of bytes
  | Ok_report of Attest.report
  | Ok_unit
  | Error_leaf of string

val tdcall : t -> Hw.Cpu.t -> Ghci.leaf -> tdcall_result
(** Execute a tdcall from the guest. Raises [Fault.Fault (#GP)] when the CPU
    is in user mode (tdcall is privileged). Advances the clock by the
    calibrated leaf cost and updates counters. *)

val with_async_exit : t -> Hw.Cpu.t -> (unit -> 'a) -> 'a
(** Model an asynchronous exit: save the guest's registers, scrub them so
    the host-side action [f] cannot observe guest state, run [f], then
    restore. The scrub is observable by [f] through the CPU. *)

(** {2 Counters} *)

val tdcall_count : t -> int
val vmcall_count : t -> int
val tdreport_count : t -> int
val map_gpa_count : t -> int
