lib/tdx/ghci.mli: Format
