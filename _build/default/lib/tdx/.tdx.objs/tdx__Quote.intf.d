lib/tdx/quote.mli: Attest Crypto
