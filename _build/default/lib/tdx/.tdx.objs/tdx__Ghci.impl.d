lib/tdx/ghci.ml: Bytes Fmt
