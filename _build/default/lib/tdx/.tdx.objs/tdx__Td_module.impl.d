lib/tdx/td_module.ml: Attest Fun Ghci Hw Sept
