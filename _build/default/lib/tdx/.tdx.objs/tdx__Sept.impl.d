lib/tdx/sept.ml: Hashtbl List Seq
