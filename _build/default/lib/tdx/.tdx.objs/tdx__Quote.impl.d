lib/tdx/quote.ml: Array Attest Bytes Char Crypto
