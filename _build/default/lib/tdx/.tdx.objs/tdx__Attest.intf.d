lib/tdx/attest.mli:
