lib/tdx/sept.mli:
