lib/tdx/attest.ml: Array Bytes Crypto
