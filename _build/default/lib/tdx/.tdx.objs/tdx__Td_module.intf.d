lib/tdx/td_module.mli: Attest Ghci Hw Sept
