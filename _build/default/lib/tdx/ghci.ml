type vmcall =
  | Cpuid of int
  | Hlt
  | Io_read of { port : int; len : int }
  | Io_write of { port : int; data : bytes }
  | Mmio_read of { gpa : int; len : int }
  | Mmio_write of { gpa : int; data : bytes }

type leaf =
  | Vmcall of vmcall
  | Tdreport of { report_data : bytes }
  | Map_gpa of { pfn : int; shared : bool }
  | Rtmr_extend of { index : int; data : bytes }

let pp_vmcall fmt = function
  | Cpuid n -> Fmt.pf fmt "cpuid(%d)" n
  | Hlt -> Fmt.string fmt "hlt"
  | Io_read { port; len } -> Fmt.pf fmt "io_read(port=%d, len=%d)" port len
  | Io_write { port; data } -> Fmt.pf fmt "io_write(port=%d, %d bytes)" port (Bytes.length data)
  | Mmio_read { gpa; len } -> Fmt.pf fmt "mmio_read(0x%x, %d)" gpa len
  | Mmio_write { gpa; data } -> Fmt.pf fmt "mmio_write(0x%x, %d bytes)" gpa (Bytes.length data)

let pp_leaf fmt = function
  | Vmcall v -> Fmt.pf fmt "vmcall:%a" pp_vmcall v
  | Tdreport _ -> Fmt.string fmt "tdreport"
  | Map_gpa { pfn; shared } -> Fmt.pf fmt "map_gpa(pfn=%d, %s)" pfn (if shared then "shared" else "private")
  | Rtmr_extend { index; _ } -> Fmt.pf fmt "rtmr_extend(%d)" index
