type service = { hw_key : bytes; key : Crypto.Rsa.keypair }

type quote = { body : Attest.report; signature : bytes }

let create_service rng ~hw_key = { hw_key; key = Crypto.Rsa.generate rng ~bits:1024 }

let attestation_key s = s.key.Crypto.Rsa.public

let signed_payload report = Attest.serialize_body report

let quote s report =
  if not (Attest.verify ~hw_key:s.hw_key report) then
    Error "quote: report MAC invalid (not produced by this platform)"
  else
    Ok { body = report; signature = Crypto.Rsa.sign s.key (signed_payload report) }

let verify public q =
  Crypto.Rsa.verify public (signed_payload q.body) ~signature:q.signature

let le32 n =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((n lsr (8 * i)) land 0xff))
  done;
  b

let read_le32 b off =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (off + i))
  done;
  !v

let serialize q =
  let report =
    Bytes.concat Bytes.empty
      (q.body.Attest.mrtd
      :: (Array.to_list q.body.Attest.rtmrs
         @ [ q.body.Attest.report_data; q.body.Attest.mac ]))
  in
  Bytes.concat Bytes.empty
    [ le32 (Bytes.length report); report; le32 (Bytes.length q.signature); q.signature ]

let deserialize b =
  let report_size = 32 + (4 * 32) + 64 + 32 in
  if Bytes.length b < 4 then Error "quote: truncated"
  else begin
    let rlen = read_le32 b 0 in
    if rlen <> report_size || Bytes.length b < 4 + rlen + 4 then Error "quote: bad report size"
    else begin
      let r = Bytes.sub b 4 rlen in
      let body =
        {
          Attest.mrtd = Bytes.sub r 0 32;
          rtmrs = Array.init 4 (fun i -> Bytes.sub r (32 + (32 * i)) 32);
          report_data = Bytes.sub r 160 64;
          mac = Bytes.sub r 224 32;
        }
      in
      let slen = read_le32 b (4 + rlen) in
      if Bytes.length b <> 4 + rlen + 4 + slen then Error "quote: bad signature size"
      else Ok { body; signature = Bytes.sub b (4 + rlen + 4) slen }
    end
  end
