(** The quoting layer: real TDX deployments convert CPU-MACed TDREPORTs into
    asymmetrically-signed *quotes* via the Quoting Enclave, so remote
    verifiers need only Intel's public collateral, never a shared secret.
    This module plays that role with the in-repo RSA: the service checks a
    report's MAC locally (it owns the hardware key, like the QE's access to
    the MAC facility) and re-signs the report body. *)

type service

type quote = {
  body : Attest.report;   (** The quoted report ([mac] not covered). *)
  signature : bytes;      (** RSA over the serialized report body. *)
}

val create_service : Crypto.Drbg.t -> hw_key:bytes -> service
(** Provision a quoting service: an RSA-1024 attestation key certified (in
    spirit) by the platform vendor. *)

val attestation_key : service -> Crypto.Rsa.public
(** The public collateral a relying party pins. *)

val quote : service -> Attest.report -> (quote, string) result
(** Verify the report's MAC and sign its body; [Error _] for forged
    reports. *)

val verify : Crypto.Rsa.public -> quote -> bool
(** Relying-party check: signature over the body. *)

val serialize : quote -> bytes
val deserialize : bytes -> (quote, string) result
