(** The secure EPT page-state table controlled exclusively by the TDX module
    (§2.1). Every guest-physical frame is either *private* (protected from
    the host and from device DMA) or *shared* (accessible to the VMM and
    devices). Conversion only happens through a tdcall. *)

type state = Private | Shared

type t

val create : frames:int -> t
(** All frames start private, as for a freshly-built TD. *)

val frames : t -> int

val state : t -> int -> state
(** Raises [Invalid_argument] on an out-of-range pfn. *)

val is_shared : t -> int -> bool

val convert : t -> int -> state -> unit
(** Flip one frame's state (TDX-module internal; guests go through
    {!Td_module.tdcall} with a MapGPA leaf). *)

val shared_count : t -> int

val shared_pfns : t -> int list
(** Ascending list of shared frames, for audit-style tests. *)
