(** The Guest-Host Communication Interface: the tdcall leaves a guest may
    invoke (Fig. 1 / Table 2 of the paper). Controlling *who* may execute
    tdcall is the heart of Erebor's GHCI interposition. *)

type vmcall =
  | Cpuid of int                 (** Leaf number; host returns the value. *)
  | Hlt
  | Io_read of { port : int; len : int }
  | Io_write of { port : int; data : bytes }
  | Mmio_read of { gpa : int; len : int }
  | Mmio_write of { gpa : int; data : bytes }

type leaf =
  | Vmcall of vmcall
      (** TDG.VP.VMCALL — synchronous exit to the host VMM. *)
  | Tdreport of { report_data : bytes }
      (** TDG.MR.REPORT — CPU-signed attestation digest; [report_data] is the
          64-byte caller-chosen binding (§2.1). *)
  | Map_gpa of { pfn : int; shared : bool }
      (** TDG.VP.MAP_GPA wrapper — convert a frame private<->shared. *)
  | Rtmr_extend of { index : int; data : bytes }
      (** TDG.MR.RTMR.EXTEND — extend a runtime measurement register. *)

val pp_vmcall : Format.formatter -> vmcall -> unit
val pp_leaf : Format.formatter -> leaf -> unit
