type state = Private | Shared

type t = {
  frames : int;
  shared : (int, unit) Hashtbl.t; (* pfns currently shared; absent = private *)
}

let create ~frames =
  if frames <= 0 then invalid_arg "Sept.create: frames must be positive";
  { frames; shared = Hashtbl.create 64 }

let frames t = t.frames

let check t pfn =
  if pfn < 0 || pfn >= t.frames then invalid_arg "Sept: pfn out of range"

let state t pfn =
  check t pfn;
  if Hashtbl.mem t.shared pfn then Shared else Private

let is_shared t pfn = state t pfn = Shared

let convert t pfn st =
  check t pfn;
  match st with
  | Shared -> Hashtbl.replace t.shared pfn ()
  | Private -> Hashtbl.remove t.shared pfn

let shared_count t = Hashtbl.length t.shared

let shared_pfns t =
  List.sort compare (List.of_seq (Seq.map fst (Hashtbl.to_seq t.shared)))
