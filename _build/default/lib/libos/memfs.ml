type file = { addr : int; len : int }

type t = {
  heap : Heap.t;
  store : addr:int -> bytes -> unit;
  load : addr:int -> len:int -> bytes;
  files : (string, file) Hashtbl.t;
}

let create ~heap ~store ~load = { heap; store; load; files = Hashtbl.create 32 }

let drop t path =
  match Hashtbl.find_opt t.files path with
  | None -> ()
  | Some f ->
      if f.len > 0 then Heap.free t.heap f.addr;
      Hashtbl.remove t.files path

let write_file t path data =
  let len = Bytes.length data in
  if len = 0 then begin
    drop t path;
    Hashtbl.replace t.files path { addr = 0; len = 0 };
    Ok ()
  end
  else
    match Heap.alloc t.heap len with
    | None -> Error "memfs: heap exhausted"
    | Some addr ->
        drop t path;
        t.store ~addr data;
        Hashtbl.replace t.files path { addr; len };
        Ok ()

let read_file t path =
  match Hashtbl.find_opt t.files path with
  | None -> None
  | Some { len = 0; _ } -> Some Bytes.empty
  | Some { addr; len } -> Some (t.load ~addr ~len)

let append_file t path data =
  match read_file t path with
  | None -> write_file t path data
  | Some existing -> write_file t path (Bytes.cat existing data)

let file_size t path = Option.map (fun f -> f.len) (Hashtbl.find_opt t.files path)
let exists t path = Hashtbl.mem t.files path

let remove t path =
  if exists t path then begin
    drop t path;
    true
  end
  else false

let list t = List.sort compare (List.of_seq (Seq.map fst (Hashtbl.to_seq t.files)))
let total_bytes t = Hashtbl.fold (fun _ f acc -> acc + f.len) t.files 0
