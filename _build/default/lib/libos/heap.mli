(** The LibOS in-sandbox heap: a first-fit free-list allocator over the
    pre-declared confined heap region (§6.2 service 1 — all memory is
    declared up front, so brk/mmap never leave the sandbox). *)

type t

val create : base:int -> len:int -> t
(** Manage [len] bytes of address space starting at [base]. *)

val alloc : t -> int -> int option
(** [alloc t n] returns an 16-byte-aligned address for [n] bytes, or [None]
    when fragmented/exhausted. *)

val free : t -> int -> unit
(** Free a block by its address; raises [Invalid_argument] on unknown or
    doubly-freed addresses. Adjacent free blocks coalesce. *)

val used_bytes : t -> int
val free_bytes : t -> int
val block_count : t -> int
(** Live allocations. *)
