(** The LibOS in-memory stateless filesystem (§6.2 service 2): file contents
    live in sandbox confined memory, allocated from the LibOS heap. After
    client data arrives the sandbox operates statelessly — temp files exist
    only here and die with the container. *)

type t

val create :
  heap:Heap.t ->
  store:(addr:int -> bytes -> unit) ->
  load:(addr:int -> len:int -> bytes) ->
  t
(** [store]/[load] move bytes to/from sandbox memory. *)

val write_file : t -> string -> bytes -> (unit, string) result
(** Create or replace; fails when the heap cannot hold the contents. *)

val append_file : t -> string -> bytes -> (unit, string) result
val read_file : t -> string -> bytes option
val file_size : t -> string -> int option
val exists : t -> string -> bool
val remove : t -> string -> bool
val list : t -> string list
val total_bytes : t -> int
(** Heap bytes consumed by file payloads. *)
