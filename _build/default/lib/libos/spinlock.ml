type t = {
  clock : Hw.Cycles.clock;
  mutable locked : bool;
  mutable acquisitions : int;
  mutable contended : int;
}

let spin_penalty = 12 (* spins before the holder's event completes *)

let create ~clock = { clock; locked = false; acquisitions = 0; contended = 0 }

let acquire t =
  t.acquisitions <- t.acquisitions + 1;
  if t.locked then begin
    t.contended <- t.contended + 1;
    Hw.Cycles.advance t.clock (spin_penalty * Hw.Cycles.Cost.spinlock_acquire)
  end;
  Hw.Cycles.advance t.clock Hw.Cycles.Cost.spinlock_acquire;
  t.locked <- true

let release t =
  if not t.locked then invalid_arg "Spinlock.release: not held";
  t.locked <- false

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let acquisitions t = t.acquisitions
let contended t = t.contended
