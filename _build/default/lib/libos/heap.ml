let align = 16

type t = {
  base : int;
  len : int;
  mutable free_list : (int * int) list; (* (addr, len), sorted by addr *)
  allocated : (int, int) Hashtbl.t;     (* addr -> len *)
  mutable used : int;
}

let round_up n = (n + align - 1) / align * align

let create ~base ~len =
  if len <= 0 then invalid_arg "Heap.create: empty arena";
  { base; len; free_list = [ (base, len) ]; allocated = Hashtbl.create 64; used = 0 }

let alloc t n =
  let n = max align (round_up n) in
  let rec take acc = function
    | [] -> None
    | (addr, blen) :: rest when blen >= n ->
        let remainder = if blen = n then [] else [ (addr + n, blen - n) ] in
        t.free_list <- List.rev_append acc (remainder @ rest);
        Hashtbl.replace t.allocated addr n;
        t.used <- t.used + n;
        Some addr
    | block :: rest -> take (block :: acc) rest
  in
  take [] t.free_list

let free t addr =
  match Hashtbl.find_opt t.allocated addr with
  | None -> invalid_arg "Heap.free: unknown or double-freed block"
  | Some n ->
      Hashtbl.remove t.allocated addr;
      t.used <- t.used - n;
      (* Insert sorted, then coalesce adjacent free blocks. *)
      let blocks = List.sort compare ((addr, n) :: t.free_list) in
      let rec coalesce = function
        | (a1, l1) :: (a2, l2) :: rest when a1 + l1 = a2 -> coalesce ((a1, l1 + l2) :: rest)
        | block :: rest -> block :: coalesce rest
        | [] -> []
      in
      t.free_list <- coalesce blocks

let used_bytes t = t.used
let free_bytes t = t.len - t.used
let block_count t = Hashtbl.length t.allocated
