module Heap = Heap
module Spinlock = Spinlock
module Memfs = Memfs

type t = {
  mgr : Erebor.Sandbox.manager;
  sb : Erebor.Sandbox.t;
  clock : Hw.Cycles.clock;
  lheap : Heap.t;
  lfs : Memfs.t;
  lock : Spinlock.t;
  threads : int;
  heap_base : int;
  mutable services : int;
}

let sandbox t = t.sb
let fs t = t.lfs
let heap t = t.lheap
let heap_base t = t.heap_base
let thread_count t = t.threads
let service_calls t = t.services

let service t =
  t.services <- t.services + 1;
  Hw.Cycles.advance t.clock Hw.Cycles.Cost.libos_service

let boot ~mgr ~sb ~heap_bytes ~threads ~preload =
  if threads < 1 then Error "libos: need at least one thread"
  else
    match Erebor.Sandbox.declare_confined mgr sb ~len:heap_bytes with
    | Error e -> Error ("libos heap: " ^ e)
    | Ok heap_base -> (
        let clock = (Erebor.Sandbox.manager_kernel mgr).Kernel.clock in
        let lheap = Heap.create ~base:heap_base ~len:heap_bytes in
        let store ~addr data = Erebor.Sandbox.write_sandbox_bytes mgr sb ~addr data in
        let load ~addr ~len = Erebor.Sandbox.read_sandbox_bytes mgr sb ~addr ~len in
        let lfs = Memfs.create ~heap:lheap ~store ~load in
        (* All worker threads exist before any client data arrives. *)
        for i = 2 to threads do
          ignore (Erebor.Sandbox.spawn_thread mgr sb ~name:(Printf.sprintf "worker-%d" i))
        done;
        let t =
          { mgr; sb; clock; lheap; lfs; lock = Spinlock.create ~clock; threads;
            heap_base; services = 0 }
        in
        (* Preload required files (libraries, configs) into the mountpoint. *)
        let rec load_all = function
          | [] -> Ok t
          | (path, data) :: rest -> (
              service t;
              match Memfs.write_file lfs path data with
              | Ok () -> load_all rest
              | Error e -> Error ("libos preload: " ^ e))
        in
        load_all preload)

let runtime_service t = service t

let malloc t n =
  service t;
  match Heap.alloc t.lheap n with
  | Some addr -> Ok addr
  | None -> Error "libos: heap exhausted"

let free t addr =
  service t;
  Heap.free t.lheap addr

let read_file t path =
  service t;
  match Memfs.read_file t.lfs path with
  | Some data -> Ok data
  | None -> Error ("libos: no such file " ^ path)

let write_file t path data =
  service t;
  Memfs.write_file t.lfs path data

let store t ~addr data = Erebor.Sandbox.write_sandbox_bytes t.mgr t.sb ~addr data
let load t ~addr ~len = Erebor.Sandbox.read_sandbox_bytes t.mgr t.sb ~addr ~len

let with_lock t f = Spinlock.with_lock t.lock f

let parallel_compute t ~total_cycles ~sync_ops =
  Hw.Cycles.advance t.clock (total_cycles / t.threads);
  for _ = 1 to sync_ops do
    Spinlock.with_lock t.lock (fun () -> ())
  done

let recv_input t =
  service t;
  match
    Erebor.Sandbox.handle_syscall t.mgr t.sb
      (Kernel.Syscall.Ioctl
         { fd = Erebor.Sandbox.channel_fd t.sb; request = 1; arg = Bytes.empty })
  with
  | Kernel.Syscall.Rbytes b -> Ok b
  | Kernel.Syscall.Rerr e -> Error e
  | Kernel.Syscall.Rint _ | Kernel.Syscall.Raddr _ | Kernel.Syscall.Rok ->
      Error "libos: unexpected input ioctl result"

let send_output t data =
  service t;
  match
    Erebor.Sandbox.handle_syscall t.mgr t.sb
      (Kernel.Syscall.Ioctl { fd = Erebor.Sandbox.channel_fd t.sb; request = 2; arg = data })
  with
  | Kernel.Syscall.Rok -> Ok ()
  | Kernel.Syscall.Rerr e -> Error e
  | Kernel.Syscall.Rint _ | Kernel.Syscall.Raddr _ | Kernel.Syscall.Rbytes _ ->
      Error "libos: unexpected output ioctl result"

(* ------------------------------------------------------------------ *)
(* POSIX surface                                                       *)
(* ------------------------------------------------------------------ *)

module Posix = struct
  type errno = EBADF | ENOENT | EEXIST | EINVAL | ENOSPC | EACCES

  let errno_to_string = function
    | EBADF -> "EBADF"
    | ENOENT -> "ENOENT"
    | EEXIST -> "EEXIST"
    | EINVAL -> "EINVAL"
    | ENOSPC -> "ENOSPC"
    | EACCES -> "EACCES"

  type flag = O_RDONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL

  type open_file = { path : string; mutable pos : int; writable : bool; append : bool }

  type dir = { libos : t; fds : (int, open_file) Hashtbl.t; mutable next_fd : int }

  let attach libos = { libos; fds = Hashtbl.create 16; next_fd = 3 }

  let openf d path flags =
    runtime_service d.libos;
    let exists = Memfs.exists d.libos.lfs path in
    let creat = List.mem O_CREAT flags in
    if (not exists) && not creat then Error ENOENT
    else if exists && creat && List.mem O_EXCL flags then Error EEXIST
    else begin
      (if (not exists) || List.mem O_TRUNC flags then
         match Memfs.write_file d.libos.lfs path Bytes.empty with
         | Ok () -> ()
         | Error _ -> ());
      let file =
        {
          path;
          pos = 0;
          writable = List.mem O_RDWR flags || creat || List.mem O_APPEND flags;
          append = List.mem O_APPEND flags;
        }
      in
      let fd = d.next_fd in
      d.next_fd <- fd + 1;
      Hashtbl.replace d.fds fd file;
      Ok fd
    end

  let lookup d fd =
    match Hashtbl.find_opt d.fds fd with Some f -> Ok f | None -> Error EBADF

  let read d fd len =
    runtime_service d.libos;
    if len < 0 then Error EINVAL
    else
      Result.bind (lookup d fd) (fun f ->
          match Memfs.read_file d.libos.lfs f.path with
          | None -> Error ENOENT
          | Some data ->
              let avail = max 0 (Bytes.length data - f.pos) in
              let n = min len avail in
              let out = Bytes.sub data f.pos n in
              f.pos <- f.pos + n;
              Ok out)

  let write d fd buf =
    runtime_service d.libos;
    Result.bind (lookup d fd) (fun f ->
        if not f.writable then Error EACCES
        else
          match Memfs.read_file d.libos.lfs f.path with
          | None -> Error ENOENT
          | Some data ->
              let at = if f.append then Bytes.length data else f.pos in
              let new_len = max (Bytes.length data) (at + Bytes.length buf) in
              let merged = Bytes.make new_len '\000' in
              Bytes.blit data 0 merged 0 (Bytes.length data);
              Bytes.blit buf 0 merged at (Bytes.length buf);
              (match Memfs.write_file d.libos.lfs f.path merged with
              | Ok () ->
                  f.pos <- at + Bytes.length buf;
                  Ok (Bytes.length buf)
              | Error _ -> Error ENOSPC))

  type whence = SEEK_SET | SEEK_CUR | SEEK_END

  let lseek d fd offset whence =
    runtime_service d.libos;
    Result.bind (lookup d fd) (fun f ->
        let size =
          Option.value ~default:0 (Memfs.file_size d.libos.lfs f.path)
        in
        let target =
          match whence with
          | SEEK_SET -> offset
          | SEEK_CUR -> f.pos + offset
          | SEEK_END -> size + offset
        in
        if target < 0 then Error EINVAL
        else begin
          f.pos <- target;
          Ok target
        end)

  let close d fd =
    runtime_service d.libos;
    if Hashtbl.mem d.fds fd then begin
      Hashtbl.remove d.fds fd;
      Ok ()
    end
    else Error EBADF

  let unlink d path =
    runtime_service d.libos;
    if Memfs.remove d.libos.lfs path then Ok () else Error ENOENT

  let rename d from_path to_path =
    runtime_service d.libos;
    match Memfs.read_file d.libos.lfs from_path with
    | None -> Error ENOENT
    | Some data -> (
        match Memfs.write_file d.libos.lfs to_path data with
        | Ok () ->
            ignore (Memfs.remove d.libos.lfs from_path);
            Ok ()
        | Error _ -> Error ENOSPC)

  let stat_size d path =
    runtime_service d.libos;
    match Memfs.file_size d.libos.lfs path with
    | Some n -> Ok n
    | None -> Error ENOENT

  let dup d fd =
    runtime_service d.libos;
    Result.bind (lookup d fd) (fun f ->
        let fd' = d.next_fd in
        d.next_fd <- fd' + 1;
        Hashtbl.replace d.fds fd' { f with pos = f.pos };
        Ok fd')

  let open_fds d = Hashtbl.length d.fds
end
