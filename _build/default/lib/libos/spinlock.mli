(** Userspace spinlocks (§6.2 service 3): futex is unavailable once the
    sandbox is sealed, so synchronization stays in-process, following the
    SGX SDK practice. Busy-waiting costs cycles but never exits. *)

type t

val create : clock:Hw.Cycles.clock -> t

val acquire : t -> unit
(** Uncontended: {!Hw.Cycles.Cost.spinlock_acquire} cycles. Contended (lock
    already held — possible because simulated threads interleave at event
    granularity): spins, charging an order of magnitude more. *)

val release : t -> unit
(** Raises [Invalid_argument] if not held. *)

val with_lock : t -> (unit -> 'a) -> 'a

val acquisitions : t -> int
val contended : t -> int
