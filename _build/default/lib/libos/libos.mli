(** The Gramine-derived Library OS running inside EREBOR-SANDBOX (§6.2).

    Boot pre-declares all confined memory, pre-creates worker threads, and
    preloads required files; afterwards every runtime service — heap,
    filesystem, synchronization — is emulated in-process, and the only exit
    is the monitor's ioctl channel. *)

module Heap = Heap
module Spinlock = Spinlock
module Memfs = Memfs

type t

val boot :
  mgr:Erebor.Sandbox.manager ->
  sb:Erebor.Sandbox.t ->
  heap_bytes:int ->
  threads:int ->
  preload:(string * bytes) list ->
  (t, string) result
(** Declare the confined heap, spawn [threads] pre-created workers (clone
    happens now, never after sealing), mount the in-memory FS and preload
    files into it. *)

val sandbox : t -> Erebor.Sandbox.t
val fs : t -> Memfs.t
val heap : t -> Heap.t
val heap_base : t -> int
val thread_count : t -> int

(** {2 Emulated runtime services (each charges the LibOS service cost)} *)

val runtime_service : t -> unit
(** Account one generic emulated service call (what a syscall would have
    been). *)

val malloc : t -> int -> (int, string) result
val free : t -> int -> unit
val read_file : t -> string -> (bytes, string) result
val write_file : t -> string -> bytes -> (unit, string) result
val store : t -> addr:int -> bytes -> unit
(** Raw write into sandbox memory (program stores). *)

val load : t -> addr:int -> len:int -> bytes

val with_lock : t -> (unit -> 'a) -> 'a
(** Internal spinlock synchronization — no futex, no exit. *)

val parallel_compute : t -> total_cycles:int -> sync_ops:int -> unit
(** Model a data-parallel phase across the worker threads: wall-clock is
    [total_cycles / threads] plus [sync_ops] lock acquisitions. *)

val recv_input : t -> (bytes, string) result
(** Fetch client data through the monitor's ioctl channel (§6.3). *)

val send_output : t -> bytes -> (unit, string) result

val service_calls : t -> int
(** Emulated service invocations (they replace what would have been
    syscalls — the LibOS-only overhead of §9.2). *)

(** POSIX-flavored file API over the in-memory FS — the compatibility
    surface Gramine provides to unmodified applications (§7: "supports
    POSIX APIs and over 170 Linux system calls"). All calls are emulated in
    process; none exits the sandbox. *)
module Posix : sig
  type errno = EBADF | ENOENT | EEXIST | EINVAL | ENOSPC | EACCES

  val errno_to_string : errno -> string

  type flag = O_RDONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL
  type whence = SEEK_SET | SEEK_CUR | SEEK_END

  type dir
  (** A descriptor table bound to one LibOS instance. *)

  val attach : t -> dir

  val openf : dir -> string -> flag list -> (int, errno) result
  val read : dir -> int -> int -> (bytes, errno) result
  val write : dir -> int -> bytes -> (int, errno) result
  val lseek : dir -> int -> int -> whence -> (int, errno) result
  val close : dir -> int -> (unit, errno) result
  val unlink : dir -> string -> (unit, errno) result
  val rename : dir -> string -> string -> (unit, errno) result
  val stat_size : dir -> string -> (int, errno) result
  val dup : dir -> int -> (int, errno) result
  val open_fds : dir -> int
end
