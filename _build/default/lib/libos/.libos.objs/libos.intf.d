lib/libos/libos.mli: Erebor Heap Memfs Spinlock
