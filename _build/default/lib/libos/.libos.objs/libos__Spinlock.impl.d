lib/libos/spinlock.ml: Fun Hw
