lib/libos/heap.ml: Hashtbl List
