lib/libos/libos.ml: Bytes Erebor Hashtbl Heap Hw Kernel List Memfs Option Printf Result Spinlock
