lib/libos/spinlock.mli: Hw
