lib/libos/heap.mli:
