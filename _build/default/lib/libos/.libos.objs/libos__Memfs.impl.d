lib/libos/memfs.ml: Bytes Hashtbl Heap List Option Seq
