lib/libos/memfs.mli: Heap
