lib/workloads/retrieval.mli: Crypto Sim Workload
