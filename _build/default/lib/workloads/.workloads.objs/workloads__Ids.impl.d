lib/workloads/ids.ml: Array Bytes Char Crypto List Printf Sim String Workload
