lib/workloads/imageproc.mli: Crypto Sim Workload
