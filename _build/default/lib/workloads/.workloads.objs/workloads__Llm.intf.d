lib/workloads/llm.mli: Crypto Lazy Sim Workload
