lib/workloads/workload.mli: Sim
