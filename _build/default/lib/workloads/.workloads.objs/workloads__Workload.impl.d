lib/workloads/workload.ml: Hw Option Sim
