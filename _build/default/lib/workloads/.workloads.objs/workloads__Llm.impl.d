lib/workloads/llm.ml: Buffer Bytes Crypto Hashtbl Lazy List Option Sim String Workload
