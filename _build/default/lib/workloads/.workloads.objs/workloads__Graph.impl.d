lib/workloads/graph.ml: Array Bytes Crypto List Printf Sim String Workload
