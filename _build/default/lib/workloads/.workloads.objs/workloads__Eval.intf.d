lib/workloads/eval.mli: Sim
