lib/workloads/ids.mli: Crypto Sim Workload
