lib/workloads/netserve.ml: Bytes Hw Printf Sim
