lib/workloads/lmbench.ml: Bytes Hw Sim
