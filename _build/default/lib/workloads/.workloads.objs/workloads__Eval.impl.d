lib/workloads/eval.ml: Bytes Erebor Graph Hw Ids Imageproc Kernel List Llm Lmbench Netserve Option Printf Retrieval Sim Tdx Workload
