lib/workloads/lmbench.mli: Sim
