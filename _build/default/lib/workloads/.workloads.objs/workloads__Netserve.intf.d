lib/workloads/netserve.mli: Sim
