lib/workloads/graph.mli: Crypto Sim Workload
