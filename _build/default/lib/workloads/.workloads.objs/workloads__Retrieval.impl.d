lib/workloads/retrieval.ml: Array Bytes Char Crypto List Printf Sim String Workload
