lib/workloads/imageproc.ml: Array Bytes Crypto List Printf Sim Stack String Workload
