module Hashmap = struct
  type 'a slot = Empty | Occupied of string * 'a

  type 'a t = {
    mutable slots : 'a slot array;
    mutable count : int;
    mutable probes : int;
  }

  let create ~capacity =
    if capacity <= 0 || capacity land (capacity - 1) <> 0 then
      invalid_arg "Hashmap.create: capacity must be a power of two";
    { slots = Array.make capacity Empty; count = 0; probes = 0 }

  (* FNV-1a, folded into OCaml's 63-bit int. *)
  let hash key =
    let h = ref 0xbf29ce484222325 in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x100000001b3)
      key;
    !h land max_int

  let put t key value =
    let mask = Array.length t.slots - 1 in
    if t.count >= Array.length t.slots * 7 / 10 then failwith "Hashmap.put: over load factor";
    let rec probe i =
      t.probes <- t.probes + 1;
      match t.slots.(i) with
      | Empty ->
          t.slots.(i) <- Occupied (key, value);
          t.count <- t.count + 1
      | Occupied (k, _) when k = key -> t.slots.(i) <- Occupied (key, value)
      | Occupied _ -> probe ((i + 1) land mask)
    in
    probe (hash key land mask)

  let get t key =
    let mask = Array.length t.slots - 1 in
    let rec probe i steps =
      t.probes <- t.probes + 1;
      if steps > mask then None
      else
        match t.slots.(i) with
        | Empty -> None
        | Occupied (k, v) when k = key -> Some v
        | Occupied _ -> probe ((i + 1) land mask) (steps + 1)
    in
    probe (hash key land mask) 0

  let length t = t.count
  let probes t = t.probes
end

type record = { name : string; formula : string; indication : string }

let drug_key i = Printf.sprintf "DB%05d" i

let indications =
  [| "hypertension"; "analgesic"; "antibiotic"; "antiviral"; "antihistamine";
     "anticoagulant"; "antidepressant"; "bronchodilator" |]

let synthetic_db ~rng ~entries =
  let capacity =
    let rec pow2 n = if n * 7 / 10 > entries then n else pow2 (2 * n) in
    pow2 64
  in
  let db = Hashmap.create ~capacity in
  for i = 0 to entries - 1 do
    let record =
      {
        name = Printf.sprintf "compound-%d" i;
        formula =
          Printf.sprintf "C%dH%dN%dO%d"
            (1 + Crypto.Drbg.int rng 40)
            (1 + Crypto.Drbg.int rng 60)
            (Crypto.Drbg.int rng 8)
            (Crypto.Drbg.int rng 12);
        indication = indications.(Crypto.Drbg.int rng (Array.length indications));
      }
    in
    Hashmap.put db (drug_key i) record
  done;
  db

let profile =
  {
    Workload.name = "drugbank";
    nominal_seconds = 12.89;
    nominal_confined_mb = 814;
    common = Some ("drugbank-db", 400);
    threads = 8;
    timer_hz = 500;
    pf_per_sec = 500.0;
    hostio_per_sec = 1200.0;
    hostio_bytes = 2048;
    pte_churn_per_sec = 88_000.0;
    sync_per_sec = 9_000.0;
    contention = 0.35;
    service_per_sec = 4_000.0;
    init_cycles_per_page = 2_820;
    output_bucket = 4096;
  }

let real_work (ops : Sim.Machine.ops) =
  let request = Bytes.to_string (ops.Sim.Machine.recv_input ()) in
  (* 2.2M queries in the paper; resolve a real sample against a real DB. *)
  let db = synthetic_db ~rng:ops.Sim.Machine.rng ~entries:5000 in
  let lookups =
    List.init 64 (fun i ->
        let key = drug_key (i * 67 mod 5000) in
        match Hashmap.get db key with
        | Some r -> Printf.sprintf "%s %s (%s): %s" key r.name r.formula r.indication
        | None -> key ^ ": not found")
  in
  ops.Sim.Machine.send_output
    (Bytes.of_string (Printf.sprintf "query=%s\n%s" request (String.concat "\n" lookups)))

let spec () =
  Workload.to_spec profile ~input:(Bytes.of_string "indication:hypertension") ~real_work
