(** Image-processing service (YOLOv5 segmentation in the paper, Table 5):
    a real Sobel edge detector plus connected-component segmentation over
    synthetic grayscale images; the shared NCNN-style model weights are the
    common region. *)

module Image : sig
  type t = { width : int; height : int; pixels : int array }

  val synthetic : rng:Crypto.Drbg.t -> width:int -> height:int -> blobs:int -> t
  (** Random bright blobs on a dark background. *)

  val sobel : t -> t
  (** Gradient magnitude (edge strength). *)

  val threshold : t -> level:int -> t
  (** Binarize at [level]. *)

  val segments : t -> int
  (** Connected components (4-neighbour) of the non-zero pixels. *)
end

val segment_count : rng:Crypto.Drbg.t -> width:int -> height:int -> blobs:int -> int
(** Full pipeline: synthesize, edge-detect, binarize, count segments. *)

val profile : Workload.profile
val spec : unit -> Sim.Machine.spec
