module Image = struct
  type t = { width : int; height : int; pixels : int array }

  let get img x y = img.pixels.((y * img.width) + x)

  let synthetic ~rng ~width ~height ~blobs =
    let pixels = Array.make (width * height) 10 in
    let img = { width; height; pixels } in
    for _ = 1 to blobs do
      let cx = Crypto.Drbg.int rng width and cy = Crypto.Drbg.int rng height in
      let r = 2 + Crypto.Drbg.int rng (max 2 (min width height / 8)) in
      for y = max 0 (cy - r) to min (height - 1) (cy + r) do
        for x = max 0 (cx - r) to min (width - 1) (cx + r) do
          let dx = x - cx and dy = y - cy in
          if (dx * dx) + (dy * dy) <= r * r then pixels.((y * width) + x) <- 220
        done
      done
    done;
    img

  let sobel img =
    let { width; height; _ } = img in
    let out = Array.make (width * height) 0 in
    for y = 1 to height - 2 do
      for x = 1 to width - 2 do
        let p dx dy = get img (x + dx) (y + dy) in
        let gx =
          p 1 (-1) + (2 * p 1 0) + p 1 1 - p (-1) (-1) - (2 * p (-1) 0) - p (-1) 1
        in
        let gy =
          p (-1) 1 + (2 * p 0 1) + p 1 1 - p (-1) (-1) - (2 * p 0 (-1)) - p 1 (-1)
        in
        out.((y * width) + x) <- min 255 (abs gx + abs gy)
      done
    done;
    { img with pixels = out }

  let threshold img ~level =
    { img with pixels = Array.map (fun v -> if v >= level then 1 else 0) img.pixels }

  let segments img =
    let { width; height; pixels } = img in
    let seen = Array.make (width * height) false in
    let count = ref 0 in
    let stack = Stack.create () in
    for start = 0 to (width * height) - 1 do
      if pixels.(start) <> 0 && not seen.(start) then begin
        incr count;
        Stack.push start stack;
        seen.(start) <- true;
        while not (Stack.is_empty stack) do
          let i = Stack.pop stack in
          let x = i mod width and y = i / width in
          List.iter
            (fun (nx, ny) ->
              if nx >= 0 && nx < width && ny >= 0 && ny < height then begin
                let j = (ny * width) + nx in
                if pixels.(j) <> 0 && not seen.(j) then begin
                  seen.(j) <- true;
                  Stack.push j stack
                end
              end)
            [ (x + 1, y); (x - 1, y); (x, y + 1); (x, y - 1) ]
        done
      end
    done;
    !count
end

let segment_count ~rng ~width ~height ~blobs =
  Image.segments
    (Image.threshold (Image.sobel (Image.synthetic ~rng ~width ~height ~blobs)) ~level:100)

let profile =
  {
    Workload.name = "yolo";
    nominal_seconds = 19.60;
    nominal_confined_mb = 757;
    common = Some ("yolov5", 132);
    threads = 8;
    timer_hz = 1000;
    pf_per_sec = 1200.0;
    hostio_per_sec = 1300.0;
    hostio_bytes = 32768;
    pte_churn_per_sec = 50_000.0;
    sync_per_sec = 12_000.0;
    contention = 0.4;
    service_per_sec = 3_000.0;
    init_cycles_per_page = 8_300;
    output_bucket = 4096;
  }

let real_work (ops : Sim.Machine.ops) =
  let _request = ops.Sim.Machine.recv_input () in
  (* 100 input images in the paper's workload; segment a sample for real. *)
  let results =
    List.init 8 (fun i ->
        let n = segment_count ~rng:ops.Sim.Machine.rng ~width:96 ~height:96 ~blobs:(3 + i) in
        Printf.sprintf "image-%d: %d segments" i n)
  in
  ops.Sim.Machine.send_output (Bytes.of_string (String.concat "\n" results))

let spec () =
  Workload.to_spec profile ~input:(Bytes.of_string "segment batch of 100 images") ~real_work
