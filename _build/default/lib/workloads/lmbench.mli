(** LMBench-style system microbenchmarks (Fig. 8 of the paper). Each runs as
    a *non-sandboxed* normal program, because what Fig. 8 measures is the
    system-wide cost of Erebor's interposition and MMU delegation on
    ordinary kernel work. *)

type bench = {
  bench_name : string;
  iterations : int;
  prepare_pages : int;  (** Working-set pages the benchmark needs mapped. *)
  op : Sim.Machine.ops -> unit;
}

val benches : bench list
(** In Fig. 8 order: null-syscall, read, write, signal, mmap, pagefault,
    fork. *)

type result = {
  name : string;
  setting : Sim.Config.setting;
  avg_cycles : float;      (** Mean latency of one operation. *)
  emc_per_sec : float;
  ops_per_sec : float;
}

val run : setting:Sim.Config.setting -> bench -> result

val overhead : bench -> float * result * result
(** (erebor_avg / native_avg, native, erebor). *)
