type bench = {
  bench_name : string;
  iterations : int;
  prepare_pages : int;
  op : Sim.Machine.ops -> unit;
}

let benches =
  [
    { bench_name = "syscall"; iterations = 20_000; prepare_pages = 4;
      op = (fun ops -> ops.Sim.Machine.service ()) };
    { bench_name = "read"; iterations = 10_000; prepare_pages = 4;
      op = (fun ops -> ops.Sim.Machine.fs_io ~write:false ~len:4096) };
    { bench_name = "write"; iterations = 10_000; prepare_pages = 4;
      op = (fun ops -> ops.Sim.Machine.fs_io ~write:true ~len:4096) };
    { bench_name = "signal"; iterations = 10_000; prepare_pages = 4;
      op = (fun ops -> ops.Sim.Machine.signal ()) };
    { bench_name = "mmap"; iterations = 1_000; prepare_pages = 4;
      op = (fun ops -> ops.Sim.Machine.mmap_cycle ~pages:16) };
    { bench_name = "pagefault"; iterations = 20_000; prepare_pages = 64;
      op = (fun ops -> ops.Sim.Machine.cold_fault ()) };
    { bench_name = "fork"; iterations = 200; prepare_pages = 16;
      op = (fun ops -> ops.Sim.Machine.fork_exit ()) };
  ]

type result = {
  name : string;
  setting : Sim.Config.setting;
  avg_cycles : float;
  emc_per_sec : float;
  ops_per_sec : float;
}

let spec_of bench =
  {
    Sim.Machine.name = "lmbench-" ^ bench.bench_name;
    sandboxed = false;
    timer_hz = 1000;
    init_compute = 0;
    confined_bytes = bench.prepare_pages * Hw.Phys_mem.page_size;
    nominal_confined_mb = 0;
    common = None;
    threads = 1;
    contention = 0.0;
    input = Bytes.empty;
    output_bucket = 64;
    body =
      (fun ops ->
        for _ = 1 to bench.iterations do
          bench.op ops
        done);
  }

let run ~setting bench =
  let r = Sim.Machine.run_fresh ~frames:32768 ~cma_frames:2048 ~setting (spec_of bench) in
  let s = r.Sim.Machine.stats in
  let seconds = Hw.Cycles.to_seconds r.Sim.Machine.run_cycles in
  {
    name = bench.bench_name;
    setting;
    avg_cycles = float_of_int r.Sim.Machine.run_cycles /. float_of_int bench.iterations;
    emc_per_sec = Sim.Stats.emc_rate s;
    ops_per_sec = (if seconds > 0.0 then float_of_int bench.iterations /. seconds else 0.0);
  }

let overhead bench =
  let native = run ~setting:Sim.Config.Native bench in
  let erebor = run ~setting:Sim.Config.Erebor_full bench in
  (erebor.avg_cycles /. native.avg_cycles, native, erebor)
