(** Intrusion-detection service (Unicorn in the paper, Table 5): a real
    provenance-graph sketch analyzer — feature-hashed histograms of event
    edges, cosine-compared against a benign baseline. *)

type event = { src : string; action : string; dst : string }

val synthetic_log :
  rng:Crypto.Drbg.t -> events:int -> anomaly_rate:float -> event list
(** Mostly benign process/file/socket activity, with an [anomaly_rate]
    fraction of exfiltration-style edges. *)

module Sketch : sig
  type t

  val create : width:int -> t
  val add : t -> event -> unit
  val cosine : t -> t -> float
  (** 0 when either sketch is empty. *)

  val count : t -> int
end

val score : baseline:Sketch.t -> event list -> float
(** 1 - cosine(baseline, sketch(log)) — higher is more anomalous. *)

val baseline : rng:Crypto.Drbg.t -> Sketch.t

val profile : Workload.profile
val spec : unit -> Sim.Machine.spec
