module Csr = struct
  type t = { row_start : int array; col : int array; n : int }

  let of_edges ~nodes edges =
    let edges =
      List.filter (fun (u, v) -> u >= 0 && u < nodes && v >= 0 && v < nodes) edges
    in
    let degree = Array.make nodes 0 in
    List.iter (fun (u, _) -> degree.(u) <- degree.(u) + 1) edges;
    let row_start = Array.make (nodes + 1) 0 in
    for i = 0 to nodes - 1 do
      row_start.(i + 1) <- row_start.(i) + degree.(i)
    done;
    let cursor = Array.copy row_start in
    let col = Array.make (List.length edges) 0 in
    List.iter
      (fun (u, v) ->
        col.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1)
      edges;
    { row_start; col; n = nodes }

  let nodes t = t.n
  let edges t = Array.length t.col
  let out_degree t u = t.row_start.(u + 1) - t.row_start.(u)

  let synthetic ~rng ~nodes ~edges =
    (* Bias targets toward low node ids for a heavy-tailed degree profile. *)
    let edge_list =
      List.init edges (fun _ ->
          let u = Crypto.Drbg.int rng nodes in
          let v =
            let a = Crypto.Drbg.int rng nodes and b = Crypto.Drbg.int rng nodes in
            min a b
          in
          (u, v))
    in
    of_edges ~nodes edge_list

  let pagerank t ~iterations ~damping =
    let n = t.n in
    if n = 0 then [||]
    else begin
      let rank = Array.make n (1.0 /. float_of_int n) in
      let next = Array.make n 0.0 in
      for _ = 1 to iterations do
        Array.fill next 0 n 0.0;
        let dangling = ref 0.0 in
        for u = 0 to n - 1 do
          let deg = out_degree t u in
          if deg = 0 then dangling := !dangling +. rank.(u)
          else begin
            let share = rank.(u) /. float_of_int deg in
            for e = t.row_start.(u) to t.row_start.(u + 1) - 1 do
              next.(t.col.(e)) <- next.(t.col.(e)) +. share
            done
          end
        done;
        let base = ((1.0 -. damping) +. (damping *. !dangling)) /. float_of_int n in
        for v = 0 to n - 1 do
          rank.(v) <- base +. (damping *. next.(v))
        done
      done;
      rank
    end

  let top_k rank ~k =
    let indexed = Array.mapi (fun i r -> (i, r)) rank in
    Array.sort (fun (_, a) (_, b) -> compare b a) indexed;
    Array.to_list (Array.sub indexed 0 (min k (Array.length indexed)))
end

let profile =
  {
    Workload.name = "graphchi";
    nominal_seconds = 34.31;
    nominal_confined_mb = 1340;
    common = None;
    threads = 8;
    timer_hz = 2700;
    pf_per_sec = 800.0;
    hostio_per_sec = 700.0;
    hostio_bytes = 4096;
    pte_churn_per_sec = 37_000.0;
    sync_per_sec = 13_000.0;
    contention = 0.35;
    service_per_sec = 2_500.0;
    init_cycles_per_page = 1_745;
    output_bucket = 4096;
  }

let real_work (ops : Sim.Machine.ops) =
  let _request = ops.Sim.Machine.recv_input () in
  (* Twitch-gamers (6.8M edges) in the paper; a scaled graph for real. *)
  let g = Csr.synthetic ~rng:ops.Sim.Machine.rng ~nodes:2000 ~edges:20000 in
  let rank = Csr.pagerank g ~iterations:10 ~damping:0.85 in
  let top = Csr.top_k rank ~k:5 in
  let lines =
    List.map (fun (node, r) -> Printf.sprintf "node %d: %.6f" node r) top
  in
  ops.Sim.Machine.send_output
    (Bytes.of_string ("pagerank top-5\n" ^ String.concat "\n" lines))

let spec () =
  Workload.to_spec profile ~input:(Bytes.of_string "pagerank twitch-gamers") ~real_work
