(** Graph-processing service (GraphChi PageRank in the paper, Table 5):
    a real CSR PageRank over a synthetic preferential-attachment graph
    standing in for the Twitch-gamers input (6.8M edges). *)

module Csr : sig
  type t

  val of_edges : nodes:int -> (int * int) list -> t
  (** Build compressed sparse rows; ignores out-of-range endpoints. *)

  val nodes : t -> int
  val edges : t -> int
  val out_degree : t -> int -> int

  val synthetic : rng:Crypto.Drbg.t -> nodes:int -> edges:int -> t
  (** Preferential-attachment-flavoured random graph. *)

  val pagerank : t -> iterations:int -> damping:float -> float array
  (** Power iteration; dangling mass is redistributed uniformly. *)

  val top_k : float array -> k:int -> (int * float) list
end

val profile : Workload.profile
val spec : unit -> Sim.Machine.spec
