type event = { src : string; action : string; dst : string }

let benign_templates =
  [| ("bash", "exec", "ls"); ("sshd", "fork", "bash"); ("nginx", "read", "/var/www/index");
     ("postgres", "write", "/var/lib/pg/wal"); ("cron", "exec", "backup.sh");
     ("systemd", "open", "/etc/hosts"); ("nginx", "accept", "socket:80");
     ("bash", "read", "/home/user/.bashrc") |]

let anomaly_templates =
  [| ("nginx", "exec", "/tmp/dropper"); ("dropper", "connect", "socket:6667");
     ("dropper", "read", "/etc/shadow"); ("dropper", "write", "socket:exfil") |]

let synthetic_log ~rng ~events ~anomaly_rate =
  List.init events (fun _ ->
      let src, action, dst =
        if Crypto.Drbg.float rng < anomaly_rate then
          anomaly_templates.(Crypto.Drbg.int rng (Array.length anomaly_templates))
        else benign_templates.(Crypto.Drbg.int rng (Array.length benign_templates))
      in
      { src; action; dst })

module Sketch = struct
  type t = { bins : float array; mutable count : int }

  let create ~width =
    if width <= 0 then invalid_arg "Sketch.create: width must be positive";
    { bins = Array.make width 0.0; count = 0 }

  let hash s =
    let h = ref 5381 in
    String.iter (fun c -> h := (!h * 33) + Char.code c) s;
    !h land max_int

  let add t { src; action; dst } =
    let width = Array.length t.bins in
    let key = src ^ "|" ^ action ^ "|" ^ dst in
    t.bins.(hash key mod width) <- t.bins.(hash key mod width) +. 1.0;
    t.count <- t.count + 1

  let cosine a b =
    if Array.length a.bins <> Array.length b.bins then
      invalid_arg "Sketch.cosine: width mismatch";
    let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
    Array.iteri
      (fun i va ->
        let vb = b.bins.(i) in
        dot := !dot +. (va *. vb);
        na := !na +. (va *. va);
        nb := !nb +. (vb *. vb))
      a.bins;
    if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. (sqrt !na *. sqrt !nb)

  let count t = t.count
end

let sketch_of_log log =
  let s = Sketch.create ~width:1024 in
  List.iter (Sketch.add s) log;
  s

let score ~baseline log = 1.0 -. Sketch.cosine baseline (sketch_of_log log)

let baseline ~rng = sketch_of_log (synthetic_log ~rng ~events:20000 ~anomaly_rate:0.0)

let profile =
  {
    Workload.name = "unicorn";
    nominal_seconds = 38.94;
    nominal_confined_mb = 1254;
    common = None;
    threads = 8;
    timer_hz = 2300;
    pf_per_sec = 700.0;
    hostio_per_sec = 900.0;
    hostio_bytes = 4096;
    pte_churn_per_sec = 35_000.0;
    sync_per_sec = 11_000.0;
    contention = 0.35;
    service_per_sec = 3_000.0;
    init_cycles_per_page = 2_410;
    output_bucket = 4096;
  }

let real_work (ops : Sim.Machine.ops) =
  let _request = ops.Sim.Machine.recv_input () in
  let rng = ops.Sim.Machine.rng in
  let base = baseline ~rng in
  let clean = synthetic_log ~rng ~events:5000 ~anomaly_rate:0.0 in
  let attacked = synthetic_log ~rng ~events:5000 ~anomaly_rate:0.15 in
  let report =
    Printf.sprintf "benign score: %.4f\nsuspect score: %.4f\nverdict: %s"
      (score ~baseline:base clean)
      (score ~baseline:base attacked)
      (if score ~baseline:base attacked > 2.0 *. score ~baseline:base clean then
         "ANOMALY DETECTED"
       else "inconclusive")
  in
  ops.Sim.Machine.send_output (Bytes.of_string report)

let spec () =
  Workload.to_spec profile ~input:(Bytes.of_string "analyze 20MB parsed log") ~real_work
