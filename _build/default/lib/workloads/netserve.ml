type server = Ssh | Nginx

let server_name = function Ssh -> "OpenSSH" | Nginx -> "Nginx"

let file_sizes_kb = [ 1; 4; 16; 64; 256; 1024; 4096; 16384 ]

(* Per-request fixed work (connection handling, protocol parsing) and
   per-byte work (crypto for SSH, copies/TCP for Nginx). *)
let request_compute = function Ssh -> 170_000 | Nginx -> 85_000
let request_syscalls = function Ssh -> 30 | Nginx -> 12
let cycles_per_byte = function Ssh -> 12 | Nginx -> 6
let handshake_rounds = function Ssh -> 2 | Nginx -> 1

(* Nginx serves with sendfile-style batching: larger NIC pushes, fewer
   per-packet crossings. SSH re-enters the kernel per cipher block. *)
let stream_chunk = function Ssh -> 256 * 1024 | Nginx -> 512 * 1024

type result = {
  server : server;
  setting : Sim.Config.setting;
  file_kb : int;
  requests : int;
  seconds : float;
  mb_per_sec : float;
}

let body server ~file_kb ~requests (ops : Sim.Machine.ops) =
  let file_bytes = file_kb * 1024 in
  for _ = 1 to requests do
    (* Accept / session setup, including protocol handshake round trips. *)
    ops.Sim.Machine.compute (request_compute server);
    for _ = 1 to request_syscalls server do
      ops.Sim.Machine.service ()
    done;
    for _ = 1 to handshake_rounds server do
      ops.Sim.Machine.host_io ~bytes:1024
    done;
    (* Stream the file: read from the FS, transform, push to the NIC. *)
    let remaining = ref file_bytes in
    while !remaining > 0 do
      let chunk = min (stream_chunk server) !remaining in
      ops.Sim.Machine.fs_io ~write:false ~len:chunk;
      ops.Sim.Machine.compute (chunk * cycles_per_byte server);
      ops.Sim.Machine.host_io ~bytes:chunk;
      remaining := !remaining - chunk
    done
  done

let spec server ~file_kb ~requests =
  {
    Sim.Machine.name = Printf.sprintf "%s-%dkb" (server_name server) file_kb;
    sandboxed = false;
    timer_hz = 1000;
    init_compute = 0;
    confined_bytes = 64 * 1024;
    nominal_confined_mb = 0;
    common = None;
    threads = 1;
    contention = 0.0;
    input = Bytes.empty;
    output_bucket = 64;
    body = body server ~file_kb ~requests;
  }

let run ~setting server ~file_kb ~requests =
  let r =
    Sim.Machine.run_fresh ~frames:32768 ~cma_frames:2048 ~setting
      (spec server ~file_kb ~requests)
  in
  let seconds = Hw.Cycles.to_seconds r.Sim.Machine.run_cycles in
  let mb = float_of_int (file_kb * requests) /. 1024.0 in
  {
    server;
    setting;
    file_kb;
    requests;
    seconds;
    mb_per_sec = (if seconds > 0.0 then mb /. seconds else 0.0);
  }

let relative_throughput server ~file_kb ~requests =
  let native = run ~setting:Sim.Config.Native server ~file_kb ~requests in
  let erebor = run ~setting:Sim.Config.Erebor_full server ~file_kb ~requests in
  erebor.mb_per_sec /. native.mb_per_sec
