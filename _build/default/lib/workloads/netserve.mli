(** Background I/O servers (Fig. 10 of the paper): OpenSSH- and Nginx-style
    file transfer loops running as *normal* (non-sandboxed) programs. They
    measure the system-wide overhead of Erebor's confinement and
    interposition on services that manage the VM and proxy traffic
    (§9.3). *)

type server = Ssh | Nginx

val server_name : server -> string

val file_sizes_kb : int list
(** 1 KB … 16 MB, the x-axis of Fig. 10. *)

type result = {
  server : server;
  setting : Sim.Config.setting;
  file_kb : int;
  requests : int;
  seconds : float;        (** Virtual time for the batch. *)
  mb_per_sec : float;
}

val run : setting:Sim.Config.setting -> server -> file_kb:int -> requests:int -> result

val relative_throughput : server -> file_kb:int -> requests:int -> float
(** erebor/native throughput ratio (1.0 = no loss), one Fig. 10 point. *)
