(** Private information retrieval service (DrugBank in the paper, Table 5):
    an open-addressing hash map (after the artifact's c_hashmap) holding a
    synthetic drug database in the common region, answering client queries. *)

module Hashmap : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** Power-of-two capacity; raises otherwise. *)

  val put : 'a t -> string -> 'a -> unit
  (** Raises [Failure] when past ~70% load. *)

  val get : 'a t -> string -> 'a option
  val length : 'a t -> int
  val probes : 'a t -> int
  (** Total probe count, a genuine work measure. *)
end

type record = { name : string; formula : string; indication : string }

val synthetic_db : rng:Crypto.Drbg.t -> entries:int -> record Hashmap.t
val drug_key : int -> string

val profile : Workload.profile
val spec : unit -> Sim.Machine.spec
