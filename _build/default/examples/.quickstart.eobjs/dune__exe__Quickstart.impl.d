examples/quickstart.ml: Bytes Crypto Erebor Hw Libos List Option Printf Result String Tdx Vmm
