examples/quickstart.mli:
