examples/intrusion_detection.ml: Bytes Crypto List Printf Sim String Workloads
