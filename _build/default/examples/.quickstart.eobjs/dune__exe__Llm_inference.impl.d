examples/llm_inference.ml: Bytes Hw Lazy Printf Sim String Workloads
