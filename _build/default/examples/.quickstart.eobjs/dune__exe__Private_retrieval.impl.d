examples/private_retrieval.ml: Bytes Crypto Erebor Hw Kernel List Option Printf Result Sim String Tdx Vmm Workloads
