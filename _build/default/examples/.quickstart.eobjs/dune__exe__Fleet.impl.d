examples/fleet.ml: Bytes Crypto Erebor Hw Kernel Libos List Printf Result Sim Tdx Vmm
