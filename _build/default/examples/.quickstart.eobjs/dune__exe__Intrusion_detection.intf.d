examples/intrusion_detection.mli:
