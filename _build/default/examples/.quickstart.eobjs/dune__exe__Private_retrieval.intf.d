examples/private_retrieval.mli:
