examples/llm_inference.mli:
