examples/fleet.mli:
