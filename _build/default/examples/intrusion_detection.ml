(* Cloud intrusion detection (the Unicorn scenario, Table 5): a corporate
   client ships provenance logs — which are sensitive (employee activity) —
   into a sandbox; the detector's verdict is the only thing that leaves.

   Also demonstrates the common-memory economics of §9.2: several detector
   sandboxes share one baseline-model instance.

   Run with:  dune exec examples/intrusion_detection.exe *)

let () =
  print_endline "Intrusion detection over private provenance logs";

  let r = Sim.Machine.run_fresh ~setting:Sim.Config.Erebor_full (Workloads.Ids.spec ()) in
  print_endline "\n--- detector verdict (the only bytes that leave) ---";
  List.iter
    (fun l -> Printf.printf "  %s\n" l)
    (String.split_on_char '\n' (Bytes.to_string r.Sim.Machine.output));
  Printf.printf "  (padded to %d bytes on the wire)\n" r.Sim.Machine.wire_output_len;

  (* The detection algorithm itself, outside any sandbox, for reference. *)
  print_endline "\n--- the sketch analyzer on a fresh log ---";
  let rng = Crypto.Drbg.create ~seed:"ids example" in
  let baseline = Workloads.Ids.baseline ~rng in
  List.iter
    (fun (label, rate) ->
      let log = Workloads.Ids.synthetic_log ~rng ~events:4000 ~anomaly_rate:rate in
      Printf.printf "  %-22s anomaly score %.4f\n" label
        (Workloads.Ids.score ~baseline log))
    [ ("clean traffic", 0.0); ("2% injected attack", 0.02); ("20% injected attack", 0.2) ];

  (* Fleet economics: detectors sharing the baseline model. *)
  print_endline "\n--- memory saving across a detector fleet (§9.2) ---";
  List.iter
    (fun (row : Workloads.Eval.memshare_row) ->
      if row.sandboxes mod 2 = 0 then
        Printf.printf "  %d sandboxes: %.1f%% memory saved by common sharing\n"
          row.sandboxes row.saving_pct)
    (Workloads.Eval.memshare ~max_sandboxes:6 ())
