(* Known-answer and property tests for the from-scratch crypto substrate. *)

open Crypto

let hex_of = Sha256.hex

let bytes_of_hex s =
  let s = String.concat "" (String.split_on_char ' ' s) in
  let n = String.length s / 2 in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  done;
  out

let check_hex msg expected actual = Alcotest.(check string) msg expected (hex_of actual)

(* ------------------------------------------------------------------ *)
(* SHA-256                                                             *)
(* ------------------------------------------------------------------ *)

let test_sha256_empty () =
  check_hex "sha256(\"\")"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "")

let test_sha256_abc () =
  check_hex "sha256(abc)"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc")

let test_sha256_two_blocks () =
  check_hex "sha256(448-bit NIST vector)"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  let ctx = Sha256.init () in
  let chunk = Bytes.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed ctx chunk
  done;
  check_hex "sha256(a^1e6)"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest ctx)

let test_sha256_incremental_split () =
  (* Feeding in arbitrary chunk sizes must match the one-shot digest. *)
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let oneshot = Sha256.digest_string msg in
  List.iter
    (fun sizes ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      List.iter
        (fun sz ->
          let take = min sz (String.length msg - !pos) in
          Sha256.feed_string ctx (String.sub msg !pos take);
          pos := !pos + take)
        sizes;
      Sha256.feed_string ctx (String.sub msg !pos (String.length msg - !pos));
      Alcotest.(check string) "split digest" (hex_of oneshot) (hex_of (Sha256.digest ctx)))
    [ [ 1; 2; 3; 4; 5 ]; [ 63; 1; 64; 65 ]; [ 128; 172 ]; [ 299 ] ]

let test_sha256_reuse_rejected () =
  let ctx = Sha256.init () in
  Sha256.feed_string ctx "x";
  ignore (Sha256.digest ctx);
  Alcotest.check_raises "reuse after digest" (Invalid_argument "Sha256.feed: context already finalized")
    (fun () -> Sha256.feed_string ctx "y")

let prop_sha256_chunking =
  QCheck.Test.make ~name:"sha256 chunked = oneshot" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 500)) (small_int_corners ()))
    (fun (msg, cut) ->
      let cut = if String.length msg = 0 then 0 else cut mod (String.length msg + 1) in
      let ctx = Sha256.init () in
      Sha256.feed_string ctx (String.sub msg 0 cut);
      Sha256.feed_string ctx (String.sub msg cut (String.length msg - cut));
      Bytes.equal (Sha256.digest ctx) (Sha256.digest_string msg))

(* ------------------------------------------------------------------ *)
(* HMAC (RFC 4231)                                                     *)
(* ------------------------------------------------------------------ *)

let test_hmac_case1 () =
  let key = Bytes.make 20 '\x0b' in
  check_hex "hmac case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_string ~key "Hi There")

let test_hmac_case2 () =
  check_hex "hmac case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_string ~key:(Bytes.of_string "Jefe") "what do ya want for nothing?")

let test_hmac_long_key () =
  (* RFC 4231 case 6: 131-byte key forces the key-hashing path. *)
  let key = Bytes.make 131 '\xaa' in
  check_hex "hmac case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_string ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = Bytes.of_string "k" in
  let msg = Bytes.of_string "msg" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts valid" true (Hmac.verify ~key msg ~tag);
  Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 1));
  Alcotest.(check bool) "rejects flipped bit" false (Hmac.verify ~key msg ~tag);
  Alcotest.(check bool) "rejects short tag" false
    (Hmac.verify ~key msg ~tag:(Bytes.sub tag 0 16))

(* ------------------------------------------------------------------ *)
(* HKDF (RFC 5869)                                                     *)
(* ------------------------------------------------------------------ *)

let test_hkdf_case1 () =
  let ikm = Bytes.make 22 '\x0b' in
  let salt = bytes_of_hex "000102030405060708090a0b0c" in
  let prk = Hkdf.extract ~salt ~ikm in
  check_hex "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  let okm = Hkdf.expand ~prk ~info:"\xf0\xf1\xf2\xf3\xf4\xf5\xf6\xf7\xf8\xf9" ~len:42 in
  check_hex "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    okm

let test_hkdf_lengths () =
  let prk = Hkdf.extract ~salt:Bytes.empty ~ikm:(Bytes.of_string "secret") in
  List.iter
    (fun len ->
      Alcotest.(check int) "okm length" len (Bytes.length (Hkdf.expand ~prk ~info:"i" ~len)))
    [ 1; 31; 32; 33; 64; 100 ];
  Alcotest.check_raises "overlong output" (Invalid_argument "Hkdf.expand: output too long")
    (fun () -> ignore (Hkdf.expand ~prk ~info:"i" ~len:(256 * 32)))

(* ------------------------------------------------------------------ *)
(* ChaCha20 (RFC 8439)                                                 *)
(* ------------------------------------------------------------------ *)

let rfc_key = bytes_of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

let test_chacha_block () =
  let nonce = bytes_of_hex "000000090000004a00000000" in
  let ks = Chacha20.block ~key:rfc_key ~nonce ~counter:1l in
  Alcotest.(check string) "rfc 8439 2.3.2 keystream"
    ("10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
     ^ "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
    (hex_of ks)

let test_chacha_encrypt () =
  let nonce = bytes_of_hex "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you \
     only one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.xor ~key:rfc_key ~nonce (Bytes.of_string plaintext) in
  Alcotest.(check string) "rfc 8439 2.4.2 first 32 ct bytes"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
    (hex_of (Bytes.sub ct 0 32));
  (* xor is an involution *)
  let pt = Chacha20.xor ~key:rfc_key ~nonce ct in
  Alcotest.(check string) "roundtrip" plaintext (Bytes.to_string pt)

let prop_chacha_involution =
  QCheck.Test.make ~name:"chacha xor involution" ~count:100
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun msg ->
      let key = Sha256.digest_string "k" in
      let nonce = Bytes.make 12 '\x07' in
      let data = Bytes.of_string msg in
      Bytes.equal data (Chacha20.xor ~key ~nonce (Chacha20.xor ~key ~nonce data)))

(* ------------------------------------------------------------------ *)
(* AEAD                                                                *)
(* ------------------------------------------------------------------ *)

let aead_key = Sha256.digest_string "aead key"
let nonce12 = Bytes.make 12 '\x01'

let test_aead_roundtrip () =
  let ad = Bytes.of_string "header" in
  let pt = Bytes.of_string "the secret payload" in
  let sealed = Aead.seal ~key:aead_key ~nonce:nonce12 ~ad pt in
  (match Aead.open_ ~key:aead_key ~ad sealed with
  | Some got -> Alcotest.(check string) "roundtrip" (Bytes.to_string pt) (Bytes.to_string got)
  | None -> Alcotest.fail "authentic message rejected");
  Alcotest.(check int) "wire size" (12 + Bytes.length pt + 32) (Aead.sealed_size sealed)

let test_aead_tamper () =
  let ad = Bytes.of_string "ad" in
  let sealed = Aead.seal ~key:aead_key ~nonce:nonce12 ~ad (Bytes.of_string "data") in
  let flip b i = Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x80)) in
  let tampered_ct = { sealed with Aead.ciphertext = Bytes.copy sealed.Aead.ciphertext } in
  flip tampered_ct.Aead.ciphertext 0;
  Alcotest.(check bool) "ciphertext tamper rejected" true
    (Aead.open_ ~key:aead_key ~ad tampered_ct = None);
  let tampered_tag = { sealed with Aead.tag = Bytes.copy sealed.Aead.tag } in
  flip tampered_tag.Aead.tag 5;
  Alcotest.(check bool) "tag tamper rejected" true
    (Aead.open_ ~key:aead_key ~ad tampered_tag = None);
  Alcotest.(check bool) "wrong ad rejected" true
    (Aead.open_ ~key:aead_key ~ad:(Bytes.of_string "xx") sealed = None);
  Alcotest.(check bool) "wrong key rejected" true
    (Aead.open_ ~key:(Sha256.digest_string "other") ~ad sealed = None)

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"aead seal/open roundtrip" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (string_of_size Gen.(0 -- 50)))
    (fun (pt, ad) ->
      let sealed =
        Aead.seal ~key:aead_key ~nonce:nonce12 ~ad:(Bytes.of_string ad) (Bytes.of_string pt)
      in
      match Aead.open_ ~key:aead_key ~ad:(Bytes.of_string ad) sealed with
      | Some got -> Bytes.to_string got = pt
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Bignum                                                              *)
(* ------------------------------------------------------------------ *)

let bn = Alcotest.testable (fun fmt b -> Fmt.string fmt (Sha256.hex (Bignum.to_bytes b))) Bignum.equal

let test_bignum_basic () =
  Alcotest.check bn "0 + 0" Bignum.zero (Bignum.add Bignum.zero Bignum.zero);
  Alcotest.check bn "1 * 1" Bignum.one (Bignum.mul Bignum.one Bignum.one);
  Alcotest.check bn "hex roundtrip" (Bignum.of_int 0xdeadbeef) (Bignum.of_hex "deadbeef");
  Alcotest.(check int) "bit_length 0" 0 (Bignum.bit_length Bignum.zero);
  Alcotest.(check int) "bit_length 255" 8 (Bignum.bit_length (Bignum.of_int 255));
  Alcotest.(check int) "bit_length 256" 9 (Bignum.bit_length (Bignum.of_int 256))

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_hex "0123456789abcdef0123456789abcdef01" in
  Alcotest.check bn "bytes roundtrip" v (Bignum.of_bytes (Bignum.to_bytes v));
  let padded = Bignum.to_bytes ~len:32 v in
  Alcotest.(check int) "padded length" 32 (Bytes.length padded);
  Alcotest.check bn "padded roundtrip" v (Bignum.of_bytes padded);
  Alcotest.check_raises "does not fit" (Invalid_argument "Bignum.to_bytes: value does not fit")
    (fun () -> ignore (Bignum.to_bytes ~len:2 v))

let prop_bignum_add_small =
  QCheck.Test.make ~name:"bignum add matches int" ~count:200
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      Bignum.equal (Bignum.add (Bignum.of_int a) (Bignum.of_int b)) (Bignum.of_int (a + b)))

let prop_bignum_mul_small =
  QCheck.Test.make ~name:"bignum mul matches int" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      Bignum.equal (Bignum.mul (Bignum.of_int a) (Bignum.of_int b)) (Bignum.of_int (a * b)))

let prop_bignum_sub =
  QCheck.Test.make ~name:"bignum (a+b)-b = a" ~count:200
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (a, b) ->
      let ba = Bignum.of_int a and bb = Bignum.of_int b in
      Bignum.equal (Bignum.sub (Bignum.add ba bb) bb) ba)

let prop_bignum_mod =
  QCheck.Test.make ~name:"bignum mod matches int" ~count:200
    QCheck.(pair (int_bound 1_000_000_000) (int_range 1 100_000))
    (fun (a, m) ->
      Bignum.equal (Bignum.mod_ (Bignum.of_int a) (Bignum.of_int m)) (Bignum.of_int (a mod m)))

let test_modpow_small () =
  (* 3^20 mod 1000003 and friends, cross-checked with a naive loop. *)
  let naive b e m =
    let rec go acc e = if e = 0 then acc else go (acc * b mod m) (e - 1) in
    go 1 e
  in
  List.iter
    (fun (b, e, m) ->
      let ctx = Bignum.Mont.create (Bignum.of_int m) in
      Alcotest.check bn
        (Printf.sprintf "%d^%d mod %d" b e m)
        (Bignum.of_int (naive b e m))
        (Bignum.Mont.modpow ctx (Bignum.of_int b) (Bignum.of_int e)))
    [ (3, 20, 1_000_003); (2, 100, 999_983); (7, 0, 11); (0, 5, 13); (12345, 77, 131_071) ]

let test_modpow_fermat () =
  (* Fermat's little theorem: a^(p-1) = 1 mod p for prime p. *)
  let p = 1_000_003 in
  let ctx = Bignum.Mont.create (Bignum.of_int p) in
  List.iter
    (fun a ->
      Alcotest.check bn "fermat" Bignum.one
        (Bignum.Mont.modpow ctx (Bignum.of_int a) (Bignum.of_int (p - 1))))
    [ 2; 3; 65537; 999_999 ]

let test_mont_rejects () =
  Alcotest.check_raises "even modulus" (Invalid_argument "Mont.create: modulus must be odd")
    (fun () -> ignore (Bignum.Mont.create (Bignum.of_int 100)));
  Alcotest.check_raises "tiny modulus" (Invalid_argument "Mont.create: modulus too small")
    (fun () -> ignore (Bignum.Mont.create (Bignum.of_int 2)))

(* ------------------------------------------------------------------ *)
(* DH                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dh_agreement () =
  let rng = Drbg.create ~seed:"dh test" in
  let alice = Dh.generate rng and bob = Dh.generate rng in
  let sa = Dh.shared_secret alice ~peer_public:(Dh.public_bytes bob) in
  let sb = Dh.shared_secret bob ~peer_public:(Dh.public_bytes alice) in
  match (sa, sb) with
  | Some sa, Some sb ->
      Alcotest.(check string) "shared secrets agree" (hex_of sa) (hex_of sb);
      Alcotest.(check int) "secret is 32 bytes" 32 (Bytes.length sa)
  | _ -> Alcotest.fail "in-range public value rejected"

let test_dh_distinct_pairs () =
  let rng = Drbg.create ~seed:"dh distinct" in
  let a = Dh.generate rng and b = Dh.generate rng in
  Alcotest.(check bool) "keypairs differ" false (Bignum.equal a.Dh.public b.Dh.public)

let test_dh_rejects_degenerate () =
  let rng = Drbg.create ~seed:"dh degenerate" in
  let kp = Dh.generate rng in
  List.iter
    (fun peer ->
      Alcotest.(check bool) "degenerate peer rejected" true
        (Dh.shared_secret kp ~peer_public:peer = None))
    [
      Bignum.to_bytes ~len:192 Bignum.zero;
      Bignum.to_bytes ~len:192 Bignum.one;
      Bignum.to_bytes ~len:192 Dh.group_prime;
      Bignum.to_bytes ~len:192 (Bignum.add Dh.group_prime Bignum.one);
    ]

(* ------------------------------------------------------------------ *)
(* RSA / primality                                                     *)
(* ------------------------------------------------------------------ *)

let rsa_kp = lazy (Crypto.Rsa.generate (Drbg.create ~seed:"rsa tests") ~bits:512)

let test_miller_rabin () =
  let rng = Drbg.create ~seed:"mr" in
  List.iter
    (fun p ->
      Alcotest.(check bool) (string_of_int p ^ " prime") true
        (Crypto.Rsa.is_probable_prime rng (Bignum.of_int p)))
    [ 2; 3; 5; 7; 97; 7919; 104729; 1_000_003 ];
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c ^ " composite") false
        (Crypto.Rsa.is_probable_prime rng (Bignum.of_int c)))
    [ 1; 4; 100; 7917; 104727; 561 (* Carmichael *); 41041 (* Carmichael *) ]

let test_generate_prime () =
  let rng = Drbg.create ~seed:"gp" in
  let p = Crypto.Rsa.generate_prime rng ~bits:64 in
  Alcotest.(check int) "width" 64 (Bignum.bit_length p);
  Alcotest.(check bool) "odd" false (Bignum.is_even p);
  Alcotest.(check bool) "probable prime" true (Crypto.Rsa.is_probable_prime rng p)

let test_rsa_sign_verify () =
  let kp = Lazy.force rsa_kp in
  let msg = Bytes.of_string "attestation body" in
  let s = Crypto.Rsa.sign kp msg in
  Alcotest.(check int) "signature width" (Crypto.Rsa.modulus_bytes kp.Crypto.Rsa.public)
    (Bytes.length s);
  Alcotest.(check bool) "verifies" true
    (Crypto.Rsa.verify kp.Crypto.Rsa.public msg ~signature:s);
  Alcotest.(check bool) "other message rejected" false
    (Crypto.Rsa.verify kp.Crypto.Rsa.public (Bytes.of_string "other") ~signature:s);
  let tampered = Bytes.copy s in
  Bytes.set tampered 3 (Char.chr (Char.code (Bytes.get tampered 3) lxor 1));
  Alcotest.(check bool) "tampered rejected" false
    (Crypto.Rsa.verify kp.Crypto.Rsa.public msg ~signature:tampered);
  Alcotest.(check bool) "short signature rejected" false
    (Crypto.Rsa.verify kp.Crypto.Rsa.public msg ~signature:(Bytes.sub s 0 16))

let test_rsa_wrong_key () =
  let kp = Lazy.force rsa_kp in
  let other = Crypto.Rsa.generate (Drbg.create ~seed:"other rsa") ~bits:512 in
  let msg = Bytes.of_string "m" in
  Alcotest.(check bool) "cross-key rejected" false
    (Crypto.Rsa.verify other.Crypto.Rsa.public msg ~signature:(Crypto.Rsa.sign kp msg))

let prop_bignum_divmod =
  QCheck.Test.make ~name:"divmod matches int" ~count:200
    QCheck.(pair (int_bound 1_000_000_000) (int_range 1 100_000))
    (fun (a, b) ->
      let q, r = Bignum.divmod (Bignum.of_int a) (Bignum.of_int b) in
      Bignum.equal q (Bignum.of_int (a / b)) && Bignum.equal r (Bignum.of_int (a mod b)))

let prop_bignum_invmod =
  QCheck.Test.make ~name:"invmod inverts" ~count:100
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 1_000_000))
    (fun (a, m) ->
      match Bignum.invmod (Bignum.of_int a) (Bignum.of_int m) with
      | Some inv ->
          Bignum.equal
            (Bignum.mod_ (Bignum.mul (Bignum.of_int (a mod m)) inv) (Bignum.of_int m))
            Bignum.one
      | None ->
          (* No inverse iff gcd <> 1. *)
          let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
          gcd (a mod m) m <> 1)

(* ------------------------------------------------------------------ *)
(* DRBG                                                                *)
(* ------------------------------------------------------------------ *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" and b = Drbg.create ~seed:"seed" in
  Alcotest.(check string) "same seed, same stream"
    (hex_of (Drbg.bytes a 100))
    (hex_of (Drbg.bytes b 100));
  let c = Drbg.create ~seed:"other" in
  Alcotest.(check bool) "different seed, different stream" false
    (Bytes.equal (Drbg.bytes (Drbg.create ~seed:"seed") 100) (Drbg.bytes c 100))

let test_drbg_int_bounds () =
  let rng = Drbg.create ~seed:"bounds" in
  for _ = 1 to 1000 do
    let v = Drbg.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done;
  Alcotest.(check int) "bound 1" 0 (Drbg.int rng 1);
  Alcotest.check_raises "bound 0" (Invalid_argument "Drbg.int: bound must be positive")
    (fun () -> ignore (Drbg.int rng 0))

let test_drbg_float_range () =
  let rng = Drbg.create ~seed:"floats" in
  for _ = 1 to 1000 do
    let f = Drbg.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_drbg_reseed () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  ignore (Drbg.bytes a 10);
  ignore (Drbg.bytes b 10);
  Drbg.reseed a "fresh entropy";
  Alcotest.(check bool) "reseed diverges" false
    (Bytes.equal (Drbg.bytes a 32) (Drbg.bytes b 32))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "two blocks" `Quick test_sha256_two_blocks;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental splits" `Quick test_sha256_incremental_split;
          Alcotest.test_case "reuse rejected" `Quick test_sha256_reuse_rejected;
          qt prop_sha256_chunking;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_case2;
          Alcotest.test_case "rfc4231 long key" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "hkdf",
        [
          Alcotest.test_case "rfc5869 case 1" `Quick test_hkdf_case1;
          Alcotest.test_case "output lengths" `Quick test_hkdf_lengths;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "rfc8439 block" `Quick test_chacha_block;
          Alcotest.test_case "rfc8439 encrypt" `Quick test_chacha_encrypt;
          qt prop_chacha_involution;
        ] );
      ( "aead",
        [
          Alcotest.test_case "roundtrip" `Quick test_aead_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_aead_tamper;
          qt prop_aead_roundtrip;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "basics" `Quick test_bignum_basic;
          Alcotest.test_case "bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
          Alcotest.test_case "modpow small" `Quick test_modpow_small;
          Alcotest.test_case "modpow fermat" `Quick test_modpow_fermat;
          Alcotest.test_case "mont rejects" `Quick test_mont_rejects;
          qt prop_bignum_add_small;
          qt prop_bignum_mul_small;
          qt prop_bignum_sub;
          qt prop_bignum_mod;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "miller-rabin" `Quick test_miller_rabin;
          Alcotest.test_case "generate prime" `Quick test_generate_prime;
          Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
          Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
          qt prop_bignum_divmod;
          qt prop_bignum_invmod;
        ] );
      ( "dh",
        [
          Alcotest.test_case "agreement" `Quick test_dh_agreement;
          Alcotest.test_case "distinct pairs" `Quick test_dh_distinct_pairs;
          Alcotest.test_case "rejects degenerate" `Quick test_dh_rejects_degenerate;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "int bounds" `Quick test_drbg_int_bounds;
          Alcotest.test_case "float range" `Quick test_drbg_float_range;
          Alcotest.test_case "reseed" `Quick test_drbg_reseed;
        ] );
    ]
