test/test_erebor.ml: Alcotest Array Bytes Char Crypto Erebor Hw Int64 Kernel List Option QCheck QCheck_alcotest Result String Tdx Vmm
