test/test_erebor.mli:
