test/test_sim.ml: Alcotest Bytes List Sim
