test/test_kernel.ml: Alcotest Buffer Bytes Crypto Fun Hw Kernel List Option QCheck QCheck_alcotest Result Tdx Vmm
