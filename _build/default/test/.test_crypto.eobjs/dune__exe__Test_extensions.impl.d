test/test_extensions.ml: Alcotest Bytes Crypto Erebor Hw Kernel List Option Printf Result Sim Tdx Vmm
