test/test_integration.ml: Alcotest Bytes Char Crypto Erebor Hw Kernel Libos List Option Printf QCheck QCheck_alcotest Result String Tdx Vmm
