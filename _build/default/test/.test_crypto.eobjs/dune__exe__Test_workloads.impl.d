test/test_workloads.ml: Alcotest Array Crypto Hw Lazy List QCheck QCheck_alcotest Sim String Workloads
