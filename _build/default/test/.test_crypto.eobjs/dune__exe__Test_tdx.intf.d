test/test_tdx.mli:
