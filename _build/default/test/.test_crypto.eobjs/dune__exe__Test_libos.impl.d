test/test_libos.ml: Alcotest Bytes Crypto Erebor Hw Kernel Libos List Option QCheck QCheck_alcotest Result Tdx Vmm
