test/test_tdx.ml: Alcotest Array Bytes Crypto Hw List Result Tdx Vmm
