test/test_crypto.ml: Aead Alcotest Bignum Bytes Chacha20 Char Crypto Dh Drbg Fmt Gen Hkdf Hmac Lazy List Printf QCheck QCheck_alcotest Sha256 String
