test/test_hw.ml: Access Alcotest Apic Array Bytes Cet Char Cpu Cr Cycles Fault Fun Hashtbl Hw Idt Image Isa List Msr Page_table Phys_mem Pks Printf Pte QCheck QCheck_alcotest String Tlb Uintr
