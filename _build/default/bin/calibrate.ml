(* Calibration driver: run one workload across all settings and print the
   emergent overheads and event rates next to the paper's targets. *)

let run_one spec_fn name =
  Printf.printf "=== %s ===\n%!" name;
  let specs = List.map (fun setting -> (setting, spec_fn ())) Sim.Config.all in
  let results =
    List.map
      (fun (setting, spec) ->
        let t0 = Unix.gettimeofday () in
        let r = Sim.Machine.run_fresh ~setting spec in
        let wall = Unix.gettimeofday () -. t0 in
        (setting, r, wall))
      specs
  in
  let native_run =
    match List.find_opt (fun (s, _, _) -> s = Sim.Config.Native) results with
    | Some (_, r, _) -> r
    | None -> assert false
  in
  List.iter
    (fun (setting, (r : Sim.Machine.run_result), wall) ->
      let ov =
        100.0
        *. (float_of_int r.Sim.Machine.run_cycles /. float_of_int native_run.Sim.Machine.run_cycles
           -. 1.0)
      in
      let init_ov =
        100.0
        *. (float_of_int r.Sim.Machine.init_cycles
            /. float_of_int native_run.Sim.Machine.init_cycles
           -. 1.0)
      in
      let s = r.Sim.Machine.stats in
      Printf.printf
        "%-12s run=%.2fs ov=%+6.2f%% init_ov=%+6.1f%% | PF=%.0f/s T=%.0f/s VE=%.0f/s EMC=%.1fk/s | out=%dB killed=%s wall=%.1fs\n%!"
        (Sim.Config.name setting)
        (Hw.Cycles.to_seconds r.Sim.Machine.run_cycles *. float_of_int Workloads.Workload.time_scale)
        ov init_ov (Sim.Stats.pf_rate s) (Sim.Stats.timer_rate s) (Sim.Stats.ve_rate s)
        (Sim.Stats.emc_rate s /. 1000.0)
        (Bytes.length r.Sim.Machine.output)
        (Option.value ~default:"-" r.Sim.Machine.killed)
        wall)
    results

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "llama" in
  match which with
  | "llama" -> run_one Workloads.Llm.spec "llama.cpp"
  | "yolo" -> run_one Workloads.Imageproc.spec "yolo"
  | "drugbank" -> run_one Workloads.Retrieval.spec "drugbank"
  | "graphchi" -> run_one Workloads.Graph.spec "graphchi"
  | "unicorn" -> run_one Workloads.Ids.spec "unicorn"
  | "all" ->
      run_one Workloads.Llm.spec "llama.cpp";
      run_one Workloads.Imageproc.spec "yolo";
      run_one Workloads.Retrieval.spec "drugbank";
      run_one Workloads.Graph.spec "graphchi";
      run_one Workloads.Ids.spec "unicorn"
  | other -> failwith ("unknown workload " ^ other)
