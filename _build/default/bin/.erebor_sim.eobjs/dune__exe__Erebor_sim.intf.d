bin/erebor_sim.mli:
