bin/erebor_sim.ml: Arg Bytes Cmd Cmdliner Crypto Erebor Fmt Hw Kernel List Printf Result Sim String Tdx Term Vmm Workloads
