bin/calibrate.mli:
