bin/calibrate.ml: Array Bytes Hw List Option Printf Sim Sys Unix Workloads
