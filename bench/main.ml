(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§9) from the simulator, printing paper values alongside for
   fidelity checks, and registers one Bechamel wall-clock test per
   table/figure for the simulator's own hot paths.

   Parsing is the declarative Workloads.Cli subcommand framework (shared
   with bin/erebor_sim): every target is a subcommand carrying its own
   flag list, "all" is the default when only flags are given, and an
   unknown flag prints the usage of exactly the target it occurred under.

   Usage:
     bench/main.exe                 # everything (same as "all")
     bench/main.exe table3|table4|fig8|fig9|table6|fig10|memshare|tables-qual
     bench/main.exe smoke           # table3+table4 only (the @ci quick gate)
     bench/main.exe density         # per-backend overhead + 1->256 tenants/CVM
                                    # (--smoke for the @ci cut; --backend /
                                    #  --tenants narrow the matrix)
     bench/main.exe attrib          # per-domain/per-phase cycle attribution
                                    # (--smoke: first program only, the @ci cut)
     bench/main.exe icode           # decoded-instruction cache microbenchmark
     bench/main.exe check           # regression gate vs committed BENCH_sim.json
                                    # (--from-journal FILE: verify a recording)
     bench/main.exe journal         # flight-recorder gate (--smoke: @ci cut)
     bench/main.exe agg             # fleet-telemetry gate (--smoke: @ci cut)
     bench/main.exe bechamel        # wall-clock microbenchmarks
   Common flags:
     --jobs N         domain-pool width for machine fan-out
                      (default: Domain.recommended_domain_count)
     --scale F        multiply simulated workload durations by F (default 1.0)
     --baseline PATH  baseline file for check/journal (default BENCH_sim.json)
     --full           "check" also compares every Fig. 9 row  *)

module C = Workloads.Cli

(* Parsed flags; set once in the driver before any experiment runs. *)
let jobs_arg : int option ref = ref None
let scale_arg = ref 1.0
let smoke_arg = ref false
let backend_arg : Erebor.Isolation.kind option ref = ref None
let tenants_arg : int option ref = ref None

let line width = print_endline (String.make width '-')

let header title =
  Printf.printf "\n%s\n" title;
  line (String.length title)

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let print_table3 () =
  header "Table 3: privilege-transition round-trip costs (CPU cycles)";
  Printf.printf "%-10s %10s %8s   %10s\n" "Call" "#Cycles" "Times" "Paper";
  List.iter
    (fun (r : Workloads.Eval.transition_row) ->
      Printf.printf "%-10s %10d %7.2fx   %10d\n" r.transition r.cycles r.ratio_vs_emc
        r.paper_cycles)
    (Workloads.Eval.table3 ())

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let print_table4 () =
  header "Table 4: privileged-operation costs, Native vs Erebor (CPU cycles)";
  Printf.printf "%-6s %10s %10s %9s   %s\n" "Op" "Native" "Erebor" "Slowdown"
    "Paper (native -> erebor)";
  List.iter
    (fun (r : Workloads.Eval.privop_row) ->
      Printf.printf "%-6s %10d %10d %8.2fx   %d -> %d\n" r.op r.native_cycles
        r.erebor_cycles r.slowdown r.paper_native r.paper_erebor)
    (Workloads.Eval.table4 ())

(* ------------------------------------------------------------------ *)
(* Fig. 8                                                              *)
(* ------------------------------------------------------------------ *)

let print_fig8 () =
  header "Figure 8: LMBench overheads (non-sandboxed system benchmarks)";
  Printf.printf "%-10s %12s %12s %8s %10s\n" "Bench" "Native(cy)" "Erebor(cy)" "Ratio"
    "EMC/s";
  List.iter
    (fun (r : Workloads.Eval.lmbench_row) ->
      Printf.printf "%-10s %12.0f %12.0f %7.2fx %9.2fM\n" r.bench r.native_avg
        r.erebor_avg r.ratio (r.emc_per_sec /. 1e6))
    (Workloads.Eval.fig8 ?jobs:!jobs_arg ());
  Printf.printf "(paper: pagefault is the worst case at 3.8x Native)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 9 + Table 6                                                    *)
(* ------------------------------------------------------------------ *)

let fig9_cache : Workloads.Eval.program_row list option ref = ref None

let fig9_rows () =
  match !fig9_cache with
  | Some rows -> rows
  | None ->
      let rows = Workloads.Eval.fig9 ?jobs:!jobs_arg () in
      fig9_cache := Some rows;
      rows

let print_fig9 () =
  header "Figure 9: runtime overhead of real-world workloads (% over Native)";
  let rows = fig9_rows () in
  Printf.printf "%-10s" "Program";
  List.iter
    (fun s -> Printf.printf " %12s" (Sim.Config.name s))
    (List.tl Sim.Config.all);
  print_newline ();
  List.iter
    (fun (program, _) ->
      Printf.printf "%-10s" program;
      List.iter
        (fun setting ->
          match
            List.find_opt
              (fun (r : Workloads.Eval.program_row) ->
                r.program = program && r.setting = setting)
              rows
          with
          | Some r -> Printf.printf " %11.2f%%" r.overhead_pct
          | None -> Printf.printf " %12s" "-")
        (List.tl Sim.Config.all);
      print_newline ())
    Workloads.Eval.all_programs;
  Printf.printf "%-10s" "geomean";
  List.iter
    (fun setting ->
      Printf.printf " %11.2f%%" (Workloads.Eval.geomean_overhead rows setting))
    (List.tl Sim.Config.all);
  print_newline ();
  Printf.printf
    "(paper: geomean 8.1%% full Erebor; 1.7%% LibOS-only; 3.6%% / 3.9%% MMU / Exit\n\
    \ ablations; llama.cpp worst at 13.15%%; full range 4.5%%-13.2%%)\n"

let print_table6 () =
  header "Table 6: program execution statistics under full Erebor";
  let rows = Workloads.Eval.table6 (fig9_rows ()) in
  Printf.printf "%-10s %8s %8s %8s %8s %9s %8s %7s %7s %9s\n" "Program" "#PF/s"
    "#Timer/s" "#VE/s" "Total/s" "EMC/s" "Time(s)" "Conf." "Com." "Init.ovh";
  List.iter
    (fun (r : Workloads.Eval.program_row) ->
      Printf.printf "%-10s %8.1f %8.1f %8.1f %8.1f %8.1fk %8.2f %6dM %6dM %8.1f%%\n"
        r.program r.pf_rate r.timer_rate r.ve_rate
        (r.pf_rate +. r.timer_rate +. r.ve_rate)
        (r.emc_rate /. 1000.0) r.time_seconds r.confined_mb r.common_mb
        r.init_overhead_pct)
    rows;
  Printf.printf
    "(paper llama.cpp row: 1.8k / 0.9k / 1.7k / 4.4k exits, 46.9k EMC/s, 52.85s,\n\
    \ 501M confined, 4096M common, 52.7%% init overhead)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 10                                                             *)
(* ------------------------------------------------------------------ *)

let print_fig10 () =
  header "Figure 10: relative throughput of background servers (Erebor / Native)";
  let rows = Workloads.Eval.fig10 ?jobs:!jobs_arg () in
  List.iter
    (fun server ->
      let mine = List.filter (fun (r : Workloads.Eval.netserve_row) -> r.server = server) rows in
      Printf.printf "%-8s:" server;
      List.iter
        (fun (r : Workloads.Eval.netserve_row) ->
          let label =
            if r.file_kb >= 1024 then Printf.sprintf "%dMB" (r.file_kb / 1024)
            else Printf.sprintf "%dKB" r.file_kb
          in
          Printf.printf " %s=%.2f" label r.relative)
        mine;
      let avg =
        List.fold_left (fun acc (r : Workloads.Eval.netserve_row) -> acc +. r.relative) 0.0 mine
        /. float_of_int (List.length mine)
      in
      Printf.printf "  (avg reduction %.1f%%)\n" (100.0 *. (1.0 -. avg)))
    [ "OpenSSH"; "Nginx" ];
  Printf.printf
    "(paper: OpenSSH -8.2%% avg / -18%% max on small files; Nginx -5.1%% avg /\n\
    \ -17.6%% max; <5%% for large files)\n"

(* ------------------------------------------------------------------ *)
(* Memory sharing (§9.2)                                               *)
(* ------------------------------------------------------------------ *)

let print_memshare () =
  header "Common-memory sharing (§9.2): llama.cpp fleet over one shared model";
  Printf.printf "%-10s %16s %18s %9s\n" "Sandboxes" "Shared (frames)" "Replicated (frames)"
    "Saving";
  List.iter
    (fun (r : Workloads.Eval.memshare_row) ->
      Printf.printf "%-10d %16d %18d %8.1f%%\n" r.sandboxes r.shared_frames
        r.replicated_frames r.saving_pct)
    (Workloads.Eval.memshare ?jobs:!jobs_arg ());
  Printf.printf
    "(paper: 8 llama.cpp containers drop from ~36GB replicated to ~8GB shared;\n\
    \ memory consumption cut by up to 89.1%%)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices in DESIGN.md                        *)
(* ------------------------------------------------------------------ *)

let print_ablations () =
  header "Ablation: batched MMU updates (the optimization §9.1 points at)";
  let declare ~batched =
    let m =
      Sim.Machine.create ~frames:65536 ~cma_frames:16384 ~setting:Sim.Config.Erebor_full ()
    in
    let mgr = Option.get (Sim.Machine.manager m) in
    let kern = Sim.Machine.kern m in
    Kernel.set_mmu_batching kern batched;
    let pages = 8192 in
    let sb =
      Result.get_ok
        (Erebor.Sandbox.create_sandbox mgr ~name:"ablate" ~confined_budget:(pages * 4096))
    in
    let before = Sim.Machine.snapshot m in
    ignore (Result.get_ok (Erebor.Sandbox.declare_confined mgr sb ~len:(pages * 4096)));
    let after = Sim.Machine.snapshot m in
    let d = Sim.Stats.diff ~before ~after in
    (d.Sim.Stats.cycles, d.Sim.Stats.emc_mmu)
  in
  let unbatched_cycles, unbatched_emc = declare ~batched:false in
  let batched_cycles, batched_emc = declare ~batched:true in
  Printf.printf "declare+pin 32MiB confined: unbatched %d cycles (%d MMU EMCs)\n"
    unbatched_cycles unbatched_emc;
  Printf.printf "                            batched   %d cycles (%d MMU EMCs)\n"
    batched_cycles batched_emc;
  Printf.printf "                            saving    %.1f%%\n"
    (100.0 *. (1.0 -. (float_of_int batched_cycles /. float_of_int unbatched_cycles)));

  header "Ablation: warm-start pools (the amortization §9.2 points at)";
  let m =
    Sim.Machine.create ~frames:65536 ~cma_frames:16384 ~setting:Sim.Config.Erebor_full ()
  in
  let mgr = Option.get (Sim.Machine.manager m) in
  let clock = Sim.Machine.clock m in
  let t0 = Hw.Cycles.now clock in
  let pool =
    Result.get_ok
      (Sim.Pool.create ~mgr ~name_prefix:"fleet" ~heap_bytes:(2048 * 4096) ~threads:8
         ~size:1 ())
  in
  let prewarm_cost = Hw.Cycles.now clock - t0 in
  let t1 = Hw.Cycles.now clock in
  ignore (Result.get_ok (Sim.Pool.acquire pool));
  let warm_cost = Hw.Cycles.now clock - t1 in
  let t2 = Hw.Cycles.now clock in
  ignore (Result.get_ok (Sim.Pool.acquire pool));
  let cold_cost = Hw.Cycles.now clock - t2 in
  Printf.printf "8MiB-heap sandbox: cold boot %d cycles; warm acquire %d cycles\n"
    cold_cost warm_cost;
  Printf.printf "(prewarm paid %d cycles off the request path)\n" prewarm_cost;

  header "Ablation: side-channel mitigations (§11) on drugbank";
  let run_with policy_name policy =
    let m =
      Sim.Machine.create ~frames:262144 ~cma_frames:65536 ~setting:Sim.Config.Erebor_full ()
    in
    (match policy with
    | Some p -> Erebor.Sandbox.set_mitigations (Option.get (Sim.Machine.manager m)) p
    | None -> ());
    let r = Sim.Machine.run m (Workloads.Retrieval.spec ()) in
    Printf.printf "%-10s %12d run cycles" policy_name r.Sim.Machine.run_cycles;
    (match Erebor.Sandbox.mitigation_stats (Option.get (Sim.Machine.manager m)) with
    | Some (stalls, stall_cycles, flushes) ->
        Printf.printf "  (stalls=%d stall-cycles=%d flushes=%d)" stalls stall_cycles flushes
    | None -> ());
    print_newline ();
    r.Sim.Machine.run_cycles
  in
  let base = run_with "none" None in
  let hardened = run_with "paranoid" (Some Erebor.Mitigations.paranoid) in
  Printf.printf "mitigation overhead: %.2f%%\n"
    (100.0 *. ((float_of_int hardened /. float_of_int base) -. 1.0))

(* ------------------------------------------------------------------ *)
(* Multi-tenant density (pluggable isolation backends)                 *)
(* ------------------------------------------------------------------ *)

let print_density () =
  let backends =
    match !backend_arg with
    | Some b -> [ b ]
    | None -> [ Erebor.Isolation.Pks; Erebor.Isolation.Tme_mk ]
  in
  let tenant_counts = Option.map (fun n -> [ n ]) !tenants_arg in
  header "Per-backend overhead on the Fig. 9 workloads (% over Native)";
  Printf.printf "%-10s %-8s %14s %14s %9s\n" "Program" "Backend" "Native(cy)"
    "Erebor(cy)" "Overhead";
  List.iter
    (fun (r : Workloads.Density.backend_row) ->
      Printf.printf "%-10s %-8s %14d %14d %8.2f%%\n" r.bprogram
        (Erebor.Isolation.kind_name r.bbackend)
        r.native_cycles r.backend_cycles r.boverhead_pct)
    (Workloads.Density.backend_overhead ?jobs:!jobs_arg ~smoke:!smoke_arg
       ~backends ());
  header "Sandboxes-per-CVM scaling (memory, EMC interference, tenant p99)";
  Printf.printf "%-8s %7s %9s %7s %7s %10s %8s %9s %12s %5s\n" "Backend"
    "Tenants" "Conf.fr" "PTP.fr" "Com.fr" "Fr/tenant" "EMC/req" "Interf."
    "Worst p99" "Viol.";
  let rows =
    Workloads.Density.scaling ?jobs:!jobs_arg ~smoke:!smoke_arg ~backends
      ?tenant_counts ()
  in
  List.iter
    (fun (r : Workloads.Density.scale_row) ->
      Printf.printf "%-8s %7d %9d %7d %7d %10.1f %8.1f %8.2f%% %12d %5d\n"
        (Erebor.Isolation.kind_name r.sbackend)
        r.tenants r.confined_frames r.ptp_frames r.common_frames
        r.frames_per_tenant r.emc_per_request r.emc_interference_pct
        r.worst_p99 r.violations)
    rows;
  let total_violations =
    List.fold_left
      (fun acc (r : Workloads.Density.scale_row) -> acc + r.violations)
      0 rows
  in
  Printf.printf
    "(adversarial probe per machine: cross-tenant confined map, TME-MK key-id\n\
    \ forgery, sealed-common writable map — %d attempts not denied)\n"
    total_violations;
  if total_violations > 0 then begin
    Printf.eprintf "density: %d isolation violations\n" total_violations;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Live SLO telemetry: seeded degradation + clean-workload silence      *)
(* ------------------------------------------------------------------ *)

let print_slo () =
  header "Live SLO telemetry: seeded mid-run stall, per-tenant attribution";
  let backend = Option.value !backend_arg ~default:Erebor.Isolation.Pks in
  let tenants = Option.value !tenants_arg ~default:4 in
  let rounds = if !smoke_arg then 16 else 40 in
  let stall_rounds = if !smoke_arg then 3 else 4 in
  let r = Workloads.Slo_bench.run ~backend ~tenants ~rounds ~stall_rounds () in
  Printf.printf "%-10s %-8s %6s %7s %-10s %-10s %s\n" "Tenant" "Seeded"
    "Reqs" "Alert" "Worst" "Final" "Transitions";
  List.iter
    (fun (o : Workloads.Slo_bench.tenant_outcome) ->
      Printf.printf "%-10s %-8s %6d %7s %-10s %-10s %s\n" o.tname
        (if o.stalled then "STALL" else "-")
        o.served
        (if o.alert_fired then "FIRED" else "-")
        (Obs.Health.state_name o.worst_state)
        (Obs.Health.state_name o.final_state)
        (String.concat " -> "
           (List.map
              (fun (_, st) -> Obs.Health.state_name st)
              o.health_transitions))
    )
    r.Workloads.Slo_bench.outcomes;
  Printf.printf
    "(%d evaluation ticks; %d alert + %d health transition events; %d audit \
     records, chain %s)\n"
    r.Workloads.Slo_bench.evals r.Workloads.Slo_bench.alert_events
    r.Workloads.Slo_bench.health_events r.Workloads.Slo_bench.audit_records
    (if r.Workloads.Slo_bench.audit_intact then "intact" else "BROKEN");
  header "Clean Fig. 9 workloads: SLOs must stay silent";
  let clean = Workloads.Slo_bench.clean_fig9 ?jobs:!jobs_arg ~smoke:!smoke_arg () in
  let clean_failures =
    List.concat_map
      (fun (program, fired) ->
        Printf.printf "%-10s %s\n" program
          (if fired = [] then "silent" else "FIRED " ^ String.concat "," fired);
        List.map (fun o -> program ^ ": clean run fired " ^ o) fired)
      clean
  in
  let failures = r.Workloads.Slo_bench.failures @ clean_failures in
  if failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "slo: %s\n" f) failures;
    exit 1
  end;
  Printf.printf
    "PASS: alert + demotion on the seeded tenant only; clean runs silent\n"

(* ------------------------------------------------------------------ *)
(* Qualitative tables (1, 2, 7)                                        *)
(* ------------------------------------------------------------------ *)

let print_tables_qual () =
  header "Table 1: CVM data-protection comparison";
  Printf.printf "%-12s %-8s %-4s %-4s %-4s %-10s %-10s\n" "System" "Approach" "AV1" "AV2"
    "AV3" "Paravisor" "Hypervisor";
  List.iter
    (fun (sys, app, a1, a2, a3, pv, hv) ->
      Printf.printf "%-12s %-8s %-4s %-4s %-4s %-10s %-10s\n" sys app a1 a2 a3 pv hv)
    [
      ("Veil", "Enclave", "yes", "no", "no", "changed", "changed");
      ("NestedSGX", "Enclave", "yes", "no", "no", "changed", "changed");
      ("Erebor", "Sandbox", "yes", "yes", "yes", "unchanged", "unchanged");
    ];
  header "Table 2: sensitive privileged instructions delegated to the monitor";
  List.iter
    (fun (s : Erebor.Policy.sensitive) ->
      Printf.printf "%-6s %-16s %s\n"
        (Fmt.str "%a" Erebor.Policy.pp_class s.Erebor.Policy.class_)
        s.Erebor.Policy.mnemonic s.Erebor.Policy.description)
    Erebor.Policy.sensitive_instructions;
  header "Table 7: cross-CVM architectural features";
  Printf.printf "%-5s %-10s %-7s %-8s %-12s %-11s %-9s\n" "Plat" "Registers" "Ctxt"
    "GHCI" "K/U separation" "Prot.key" "HW-CFI";
  List.iter
    (fun (p, r, c, g, k, pk, cfi) ->
      Printf.printf "%-5s %-10s %-7s %-8s %-12s %-11s %-9s\n" p r c g k pk cfi)
    [
      ("TDX", "CR/MSR", "IDT", "tdcall", "SMEP/SMAP", "PKS", "IBT+SST");
      ("SEV", "CR/MSR", "IDT", "vmgexit", "SMEP/SMAP", "page table", "IBT+SST");
      ("CCA", "EL1", "VBAR", "smc", "PXN/PAN", "PIE", "BTI+GCS");
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benchmarks of the simulator itself              *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let table3_test =
    Test.make ~name:"table3-transitions" (Staged.stage (fun () -> ignore (Workloads.Eval.table3 ())))
  in
  let table4_test =
    Test.make ~name:"table4-privops" (Staged.stage (fun () -> ignore (Workloads.Eval.table4 ())))
  in
  let fig8_test =
    let bench = List.hd Workloads.Lmbench.benches in
    Test.make ~name:"fig8-lmbench-syscall"
      (Staged.stage (fun () -> ignore (Workloads.Lmbench.run ~setting:Sim.Config.Erebor_full bench)))
  in
  let fig9_test =
    Test.make ~name:"fig9-drugbank-full"
      (Staged.stage (fun () ->
           ignore
             (Sim.Machine.run_fresh ~frames:65536 ~cma_frames:16384
                ~setting:Sim.Config.Erebor_full (Workloads.Retrieval.spec ()))))
  in
  let table6_test =
    Test.make ~name:"table6-stats-native"
      (Staged.stage (fun () ->
           ignore
             (Sim.Machine.run_fresh ~frames:65536 ~cma_frames:16384
                ~setting:Sim.Config.Native (Workloads.Retrieval.spec ()))))
  in
  let fig10_test =
    Test.make ~name:"fig10-nginx-64kb"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Netserve.run ~setting:Sim.Config.Erebor_full Workloads.Netserve.Nginx
                ~file_kb:64 ~requests:2)))
  in
  let memshare_test =
    Test.make ~name:"memshare-2-sandboxes"
      (Staged.stage (fun () -> ignore (Workloads.Eval.memshare ~max_sandboxes:2 ())))
  in
  (* Telemetry record paths, 1000 records per run: the live log2
     histogram sink vs the mergeable quantile sketch vs the full fleet
     record (sketch + per-tenant sketch + heavy-hitter + exemplar). *)
  let hist_obs = Obs.Emitter.create () in
  let _hist = Obs.Histogram.attach hist_obs (Obs.Histogram.create ()) in
  let hist_test =
    Test.make ~name:"obs-histogram-record-1k"
      (Staged.stage (fun () ->
           for i = 1 to 1000 do
             Obs.Emitter.emit hist_obs Obs.Trace.Req_end ~ts:i
               ~arg:(i land 0xFFFF)
           done))
  in
  let sketch = Obs.Sketch.create () in
  let sketch_test =
    Test.make ~name:"obs-sketch-record-1k"
      (Staged.stage (fun () ->
           for i = 1 to 1000 do
             Obs.Sketch.record sketch (i land 0xFFFF)
           done))
  in
  let part = Obs.Agg.part ~machine:"bech" () in
  let tn = Obs.Agg.tenant part "tenant-0" in
  let agg_test =
    Test.make ~name:"obs-agg-record-1k"
      (Staged.stage (fun () ->
           for i = 1 to 1000 do
             Obs.Agg.record part tn Obs.Trace.Req_end
               ~latency:(i land 0xFFFF) ~trace_id:i ~offset:(i * 64) ~ts:i
           done))
  in
  Test.make_grouped ~name:"erebor-eval"
    [ table3_test; table4_test; fig8_test; fig9_test; table6_test; fig10_test;
      memshare_test; hist_test; sketch_test; agg_test ]

let run_bechamel () =
  let open Bechamel in
  header "Bechamel: simulator wall-clock per experiment regeneration";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (bechamel_tests ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (v :: _) -> v | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-40s %12.3f ms/run\n" name (ns /. 1e6))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* EMC latency histogram (observability subsystem)                     *)
(* ------------------------------------------------------------------ *)

let print_emchist () =
  header "EMC latency histograms: drugbank under full Erebor (log2 buckets, cycles)";
  let obs = Obs.Emitter.create () in
  let hist = Obs.Histogram.attach obs (Obs.Histogram.create ()) in
  let m = Sim.Machine.create ~obs ~setting:Sim.Config.Erebor_full () in
  let spec_fn = List.assoc "drugbank" Workloads.Eval.all_programs in
  ignore (Sim.Machine.run m (spec_fn ()));
  let report kind =
    if Obs.Histogram.count hist kind > 0 then
      Fmt.pr "%a@." Obs.Histogram.pp (hist, kind)
  in
  List.iter report
    [
      Obs.Trace.Emc_entry;
      Obs.Trace.emc_mmu;
      Obs.Trace.emc_cr;
      Obs.Trace.emc_msr;
      Obs.Trace.emc_idt;
      Obs.Trace.emc_smap;
      Obs.Trace.emc_ghci;
    ]

(* ------------------------------------------------------------------ *)
(* Cycle attribution (observability subsystem)                         *)
(* ------------------------------------------------------------------ *)

let print_attrib () =
  header
    (if !smoke_arg then
       "Cycle attribution: domain x phase decomposition (smoke: first program x every setting)"
     else
       "Cycle attribution: domain x phase decomposition (every Fig. 9 program x setting)");
  let rows = Workloads.Eval.attrib ?jobs:!jobs_arg ~smoke:!smoke_arg () in
  List.iter
    (fun (r : Workloads.Eval.attrib_row) ->
      let total = float_of_int r.total_cycles in
      Printf.printf "\n%s @ %s  (%d cycles)\n" r.aprogram
        (Sim.Config.name r.asetting) r.total_cycles;
      let attributed = ref 0 in
      List.iter
        (fun (domain, phase, cycles) ->
          attributed := !attributed + cycles;
          Printf.printf "  %-8s %-10s %14d  %6.2f%%\n" domain phase cycles
            (100.0 *. float_of_int cycles /. total))
        r.contexts;
      Printf.printf "  %-8s %-10s %14d  %6.2f%%\n" "-" "(outside)"
        r.unattributed_cycles
        (100.0 *. float_of_int r.unattributed_cycles /. total);
      if !attributed + r.unattributed_cycles <> r.total_cycles then begin
        Printf.printf "  CONSERVATION VIOLATED: %d attributed + %d outside <> %d total\n"
          !attributed r.unattributed_cycles r.total_cycles;
        exit 1
      end)
    rows;
  Printf.printf
    "\n(every row's contexts + (outside) sum exactly to its total — checked)\n"

(* ------------------------------------------------------------------ *)
(* Decoded-instruction cache microbenchmark                            *)
(* ------------------------------------------------------------------ *)

let print_icode () =
  header "Decoded-instruction cache: threaded dispatch vs per-step Isa.decode";
  (* The workload is the monitor's own gate listing — the exact sequence
     every EMC round trip retires — so the speedup shown here is the one
     that makes per-EMC gate execution affordable. *)
  let cpu =
    Hw.Cpu.create ~id:0
      ~mem:(Hw.Phys_mem.create ~frames:16)
      ~clock:(Hw.Cycles.clock ()) ~timer_period:1_000_000 ()
  in
  let gate =
    Erebor.Gate.create ~cpu ~code_base:0x1000
      ~backend:(Erebor.Isolation.create Erebor.Isolation.Pks ~cpu) ()
  in
  let code = Erebor.Gate.code_bytes gate in
  let prog =
    match Hw.Icode.of_bytes code with
    | Ok p -> p
    | Error off -> failwith (Printf.sprintf "gate listing undecodable at +%d" off)
  in
  let st = Hw.Icode.make_state () in
  let iters = 2_000_000 in
  let bench label f =
    (* One warmup pass, then a timed loop with GC deltas. *)
    ignore (f ());
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let retired = ref 0 in
    for _ = 1 to iters do
      retired := !retired + f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    Printf.printf
      "  %-22s %8.1f ns/run  %12.0f instr/s  %6.2f minor words/run\n" label
      (dt /. float_of_int iters *. 1e9)
      (float_of_int !retired /. dt)
      ((g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int iters);
    dt
  in
  let warm =
    bench "decoded (warm cache)" (fun () ->
        Hw.Icode.run prog st ~entry:0 ~fuel:64)
  in
  let cold =
    bench "per-step Isa.decode" (fun () ->
        Hw.Icode.run_undecoded code st ~entry:0 ~fuel:64)
  in
  let hits, misses = Hw.Icode.cache_stats () in
  Printf.printf "  speedup: %.1fx  (decode cache: %d hits, %d misses)\n"
    (cold /. warm) hits misses

(* ------------------------------------------------------------------ *)
(* Regression gate against the committed BENCH_sim.json                *)
(* ------------------------------------------------------------------ *)

let report_verdict ~baseline ~pass_detail verdict =
  let fails = Workloads.Bench_gate.failures verdict in
  if fails = [] then
    Printf.printf "PASS: %d checks (%s)\n" (List.length verdict) pass_detail
  else begin
    (* All mismatches in one old/new table — one run is enough to see
       the full extent of a regression. *)
    Format.printf "%a" Workloads.Bench_gate.pp_mismatch_table verdict;
    Printf.printf "FAIL: %d of %d checks failed against %s\n"
      (List.length fails) (List.length verdict) baseline;
    exit 1
  end

let run_check ~baseline ~full ~from_journal () =
  let result =
    match from_journal with
    | None ->
        header (Printf.sprintf "Regression gate: current build vs %s" baseline);
        Workloads.Bench_gate.check_file ~fig9:full ?jobs:!jobs_arg
          ~path:baseline ()
    | Some journal ->
        header
          (Printf.sprintf "Regression gate: recording %s vs %s" journal
             baseline);
        Workloads.Bench_gate.check_journal_file ~journal ~path:baseline ()
  in
  match result with
  | Error e ->
      Printf.eprintf "bench check: %s\n" e;
      exit 1
  | Ok verdict ->
      report_verdict ~baseline
        ~pass_detail:
          (match from_journal with
          | None -> "anchors exact, wall/GC within tolerance"
          | Some _ -> "recording reproduces the baseline Fig. 9 row")
        verdict

(* ------------------------------------------------------------------ *)
(* Flight-recorder gate (observability subsystem)                      *)
(* ------------------------------------------------------------------ *)

let run_journal ~baseline () =
  header
    "Flight-recorder gate: invisible, lossless, allocation-free, diffable";
  let verdict = Workloads.Journal_bench.run ~smoke:!smoke_arg ~baseline () in
  Format.printf "%a" Workloads.Bench_gate.pp_verdict verdict;
  report_verdict ~baseline
    ~pass_detail:
      "anchors byte-identical under recording, replay exact, 0 words/event"
    verdict

(* ------------------------------------------------------------------ *)
(* Fleet-telemetry gate (mergeable sketches / heavy hitters / exemplars) *)
(* ------------------------------------------------------------------ *)

let run_agg () =
  header
    "Fleet-telemetry gate: invisible, order-invariant, allocation-free, \
     attributable";
  let verdict = Workloads.Agg_bench.run ~smoke:!smoke_arg () in
  Format.printf "%a" Workloads.Bench_gate.pp_verdict verdict;
  report_verdict ~baseline:"Obs.Agg determinism contract"
    ~pass_detail:
      "anchors identical, quantiles within bound, merge order-invariant, \
       0 words/record, spike attributable"
    verdict

(* ------------------------------------------------------------------ *)
(* BENCH_sim.json — machine-readable run record for regression diffing *)
(* ------------------------------------------------------------------ *)

(* Peak resident set in KiB, from the kernel's high-water mark. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
            close_in ic;
            let digits =
              String.to_seq line
              |> Seq.filter (fun c -> c >= '0' && c <= '9')
              |> String.of_seq
            in
            int_of_string_opt digits
          end
          else scan ()
      | exception End_of_file ->
          close_in ic;
          None
    in
    scan ()
  with Sys_error _ -> None

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path ~timings ~total_wall_s =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"erebor-bench-sim/1\",\n";
  add "  \"jobs\": %d,\n"
    (match !jobs_arg with Some j -> j | None -> Sim.Runner.default_jobs ());
  add "  \"scale\": %.6f,\n" !scale_arg;
  add "  \"total_wall_s\": %.6f,\n" total_wall_s;
  (match peak_rss_kb () with
  | Some kb -> add "  \"peak_rss_kb\": %d,\n" kb
  | None -> add "  \"peak_rss_kb\": null,\n");
  let gc = Gc.quick_stat () in
  add "  \"gc\": { \"minor_words\": %.0f, \"major_words\": %.0f, \"major_collections\": %d },\n"
    gc.Gc.minor_words gc.Gc.major_words gc.Gc.major_collections;
  add "  \"targets\": [\n";
  List.iteri
    (fun i (name, wall) ->
      add "    { \"name\": \"%s\", \"wall_s\": %.6f }%s\n" (json_escape name) wall
        (if i = List.length timings - 1 then "" else ","))
    timings;
  add "  ],\n";
  (* Calibration anchors: the simulated-cycle numbers of Tables 3 and 4.
     These must not move under perf work — byte-stable across runs. *)
  add "  \"table3\": [\n";
  let t3 = Workloads.Eval.table3 () in
  List.iteri
    (fun i (r : Workloads.Eval.transition_row) ->
      add "    { \"transition\": \"%s\", \"cycles\": %d, \"paper_cycles\": %d }%s\n"
        (json_escape r.transition) r.cycles r.paper_cycles
        (if i = List.length t3 - 1 then "" else ","))
    t3;
  add "  ],\n";
  add "  \"table4\": [\n";
  let t4 = Workloads.Eval.table4 () in
  List.iteri
    (fun i (r : Workloads.Eval.privop_row) ->
      add
        "    { \"op\": \"%s\", \"native_cycles\": %d, \"erebor_cycles\": %d }%s\n"
        (json_escape r.op) r.native_cycles r.erebor_cycles
        (if i = List.length t4 - 1 then "" else ","))
    t4;
  add "  ],\n";
  add "  \"fig9\": [\n";
  let rows = fig9_rows () in
  List.iteri
    (fun i (r : Workloads.Eval.program_row) ->
      add
        "    { \"program\": \"%s\", \"setting\": \"%s\", \"overhead_pct\": %.4f, \
         \"pf_rate\": %.2f, \"timer_rate\": %.2f, \"ve_rate\": %.2f, \"emc_rate\": %.2f }%s\n"
        (json_escape r.program)
        (json_escape (Sim.Config.name r.setting))
        r.overhead_pct r.pf_rate r.timer_rate r.ve_rate r.emc_rate
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "[bench] wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all () =
  let timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    f ();
    timings := (name, Unix.gettimeofday () -. t0) :: !timings
  in
  let t_start = Unix.gettimeofday () in
  timed "table3" print_table3;
  timed "table4" print_table4;
  timed "fig8" print_fig8;
  timed "fig9" print_fig9;
  timed "table6" print_table6;
  timed "fig10" print_fig10;
  timed "memshare" print_memshare;
  timed "ablations" print_ablations;
  timed "tables-qual" print_tables_qual;
  timed "emchist" print_emchist;
  let total_wall_s = Unix.gettimeofday () -. t_start in
  write_bench_json ~path:"BENCH_sim.json" ~timings:(List.rev !timings) ~total_wall_s

(* The @ci quick gate: just the calibration tables, no workload machines. *)
let smoke () =
  print_table3 ();
  print_table4 ()

(* Shared flags; each target lists only the ones it reads, so an unknown
   flag fails with the usage of exactly that target. *)
let jobs_flag =
  C.flag ~docv:"N" [ "--jobs"; "-j" ]
    "Domain-pool width for machine fan-out (default: \
     Domain.recommended_domain_count)."

let scale_flag =
  C.flag ~docv:"F" [ "--scale" ]
    "Multiply simulated workload durations by F (default 1.0)."

let smoke_flag = C.flag [ "--smoke" ] "Restrict to the quick @ci cut."

let backend_flag =
  C.flag ~docv:"KIND" [ "--backend" ]
    "Isolation backend to measure (pks, wp, tmemk; default: both \
     calibrated backends)."

let tenants_flag =
  C.flag ~docv:"N" [ "--tenants" ] "Single tenant count for the scaling matrix."

let baseline_flag =
  C.flag ~docv:"PATH" [ "--baseline" ]
    "Baseline suite record to gate against (default BENCH_sim.json)."

let full_flag = C.flag [ "--full" ] "Also compare every Fig. 9 row."

let from_journal_flag =
  C.flag ~docv:"FILE" [ "--from-journal" ]
    "Verify the baseline's Fig. 9 anchors against a flight recording \
     written by erebor-sim run --record instead of re-running the build."

(* Fold the shared flags into the refs the experiment printers read. *)
let setup p =
  jobs_arg :=
    (match C.str p jobs_flag with
    | None -> None
    | Some _ -> Some (C.int_of p ~min:1 ~default:1 jobs_flag));
  (match C.str p scale_flag with
  | None -> ()
  | Some _ ->
      let f = C.float_of p ~default:1.0 scale_flag in
      if f <= 0.0 then C.fail p "--scale: positive number expected"
      else begin
        scale_arg := f;
        Workloads.Workload.set_scale f
      end);
  smoke_arg := C.has p smoke_flag;
  (match C.str p backend_flag with
  | None -> backend_arg := None
  | Some s -> (
      match Erebor.Isolation.kind_of_name s with
      | Ok b -> backend_arg := Some b
      | Error e -> C.fail p ("--backend: " ^ e)));
  tenants_arg :=
    (match C.str p tenants_flag with
    | None -> None
    | Some _ -> Some (C.int_of p ~min:1 ~default:1 tenants_flag))

let exp_flags = [ jobs_flag; scale_flag ]

let target ?(flags = exp_flags) name doc f =
  C.cmd ~name ~doc ~flags (fun p ->
      setup p;
      f p)

let baseline_of p = Option.value (C.str p baseline_flag) ~default:"BENCH_sim.json"

let () =
  C.run ~prog:"bench" ~default:"all"
    ~doc:"Regenerate the paper's evaluation (§9) from the simulator"
    [
      target "all" "Every table and figure, then write BENCH_sim.json"
        (fun _ -> all ());
      target "smoke" "Tables 3+4 only (the @ci quick gate)" (fun _ -> smoke ());
      target "table3" "Privilege-transition round-trip costs" (fun _ ->
          print_table3 ());
      target "table4" "Privileged-operation costs" (fun _ -> print_table4 ());
      target "fig8" "LMBench overheads" (fun _ -> print_fig8 ());
      target "fig9" "Real-world workload overheads" (fun _ -> print_fig9 ());
      target "table6" "Program execution statistics" (fun _ -> print_table6 ());
      target "fig10" "Background-server throughput" (fun _ -> print_fig10 ());
      target "memshare" "Common-memory sharing (§9.2)" (fun _ ->
          print_memshare ());
      target "density"
        ~flags:(exp_flags @ [ smoke_flag; backend_flag; tenants_flag ])
        "Per-backend overhead + sandboxes-per-CVM scaling" (fun _ ->
          print_density ());
      target "slo"
        ~flags:(exp_flags @ [ smoke_flag; backend_flag; tenants_flag ])
        "Live SLO telemetry: seeded degradation + clean-run silence" (fun _ ->
          print_slo ());
      target "ablations" "Design-choice ablations (DESIGN.md)" (fun _ ->
          print_ablations ());
      target "tables-qual" "Qualitative tables (1, 2, 7)" (fun _ ->
          print_tables_qual ());
      target "emchist" "EMC latency histograms" (fun _ -> print_emchist ());
      target "attrib" ~flags:(exp_flags @ [ smoke_flag ])
        "Domain x phase cycle attribution (conservation-checked)" (fun _ ->
          print_attrib ());
      target "icode" "Decoded-instruction cache microbenchmark" (fun _ ->
          print_icode ());
      target "check"
        ~flags:[ jobs_flag; baseline_flag; full_flag; from_journal_flag ]
        "Regression gate vs the committed BENCH_sim.json" (fun p ->
          run_check ~baseline:(baseline_of p) ~full:(C.has p full_flag)
            ~from_journal:(C.str p from_journal_flag) ());
      target "journal" ~flags:[ smoke_flag; baseline_flag ]
        "Flight-recorder gate: invisible, lossless, allocation-free, \
         diffable" (fun p -> run_journal ~baseline:(baseline_of p) ());
      target "agg" ~flags:[ smoke_flag ]
        "Fleet-telemetry gate: mergeable sketches, heavy hitters, \
         exemplars" (fun _ -> run_agg ());
      target "bechamel" "Wall-clock microbenchmarks of the simulator"
        (fun _ -> run_bechamel ());
    ]
